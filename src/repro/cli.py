"""Command-line interface.

Subcommands::

    python -m repro detect    # cluster a graph file, write communities
    python -m repro generate  # write an R-MAT / planted / webgraph file
    python -m repro info      # print size/degree statistics of a graph
    python -m repro kernels   # list registered kernels + capability metadata
    python -m repro bench     # regenerate a paper exhibit (table1..figure3)
    python -m repro report    # render a run trace (+ ledger) to Markdown/HTML
    python -m repro trend     # metric trajectory across BENCH_*.json ledgers
    python -m repro watch     # live ASCII view of a running run's status.json
    python -m repro replay    # stream an edge log through the detection service
    python -m repro serve     # journal-and-apply edge events read from stdin

Every command reads/writes the formats in :mod:`repro.graph.io`
(``edgelist``, ``metis``, ``npz``, auto-detected from the extension).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

import numpy as np

from repro import __version__
from repro.baselines import (
    cnm_communities,
    label_propagation_communities,
    louvain_communities,
)
from repro.core import (
    AUTO_KERNEL,
    TerminationCriteria,
    create_kernel,
    detect_communities,
    kernel_names,
    refine_partition,
)
from repro.errors import RunAbortedError
from repro.graph import (
    load_npz,
    read_edgelist,
    read_metis,
    save_npz,
    write_edgelist,
    write_metis,
)
from repro.graph.graph import CommunityGraph
from repro.metrics import Partition, average_conductance, coverage, modularity
from repro.obs import Tracer, as_tracer, render_profile, write_trace
from repro.parallel.backends import backend_names, create_backend
from repro.resilience.guardian import RunGuardian
from repro.resilience.invariants import AUDIT_MODES

__all__ = ["main"]


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    """A real tracer when ``--trace-out``/``--profile``/``--metrics-out``/
    ``--perfetto-out`` ask for one."""
    if (
        getattr(args, "trace_out", None)
        or getattr(args, "profile", False)
        or getattr(args, "metrics_out", None)
        or getattr(args, "perfetto_out", None)
    ):
        return Tracer()
    return None


def _make_telemetry(
    args: argparse.Namespace, tracer: Tracer | None
) -> "TelemetrySampler | None":
    """A live-telemetry sampler when ``--telemetry``/``--status-file``
    ask for one (counter samples need a tracer; the status heartbeat
    does not)."""
    if not (
        getattr(args, "telemetry", False)
        or getattr(args, "status_file", None)
    ):
        return None
    from repro.obs.telemetry import TelemetrySampler

    return TelemetrySampler(
        tracer,
        interval_s=getattr(args, "telemetry_interval", 0.25),
        status_path=getattr(args, "status_file", None),
        meta={"command": args.command},
    )


def _make_memprof(args: argparse.Namespace) -> "PhaseMemoryProfiler | None":
    if not getattr(args, "memprof", False):
        return None
    from repro.obs.memprof import PhaseMemoryProfiler

    return PhaseMemoryProfiler()


def _print_memprof(report: dict) -> None:
    phases = (report or {}).get("phases") or {}
    if not phases:
        return
    print("memory attribution (tracemalloc):", file=sys.stderr)
    for name, p in phases.items():
        line = (
            f"  {name}: net {p['net_bytes'] / 1e6:+.1f} MB, "
            f"peak {p['peak_bytes'] / 1e6:.1f} MB over {p['calls']} call(s)"
        )
        top = p.get("top_sites") or []
        if top:
            line += f"; top site {top[0]['site']} ({top[0]['net_bytes'] / 1e6:+.1f} MB)"
        print(line, file=sys.stderr)


def _emit_trace(
    tracer: Tracer | None, args: argparse.Namespace, meta: dict
) -> None:
    """Write the JSONL trace / Prometheus metrics / profile table."""
    if tracer is None:
        return
    if args.trace_out:
        n = write_trace(tracer, args.trace_out, meta=meta)
        print(
            f"trace: {n} spans written to {args.trace_out}", file=sys.stderr
        )
    if getattr(args, "perfetto_out", None):
        from repro.obs.perfetto import write_perfetto

        n = write_perfetto(
            list(tracer.spans),
            args.perfetto_out,
            samples=list(tracer.counter_samples),
            meta=meta,
        )
        print(
            f"perfetto: {n} events written to {args.perfetto_out} "
            "(open in ui.perfetto.dev)",
            file=sys.stderr,
        )
    if getattr(args, "metrics_out", None):
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(tracer.metrics.render_prometheus())
        print(f"metrics: written to {args.metrics_out}", file=sys.stderr)
    if args.profile:
        print(render_profile(list(tracer.spans)), file=sys.stderr)


def _load_graph(path: str, fmt: str) -> CommunityGraph:
    if fmt == "auto":
        if path.endswith(".npz"):
            fmt = "npz"
        elif path.endswith((".metis", ".graph")):
            fmt = "metis"
        else:
            fmt = "edgelist"
    if fmt == "npz":
        return load_npz(path)
    if fmt == "metis":
        return read_metis(path)
    return read_edgelist(path)


def _save_graph(graph: CommunityGraph, path: str, fmt: str) -> None:
    if fmt == "auto":
        if path.endswith(".npz"):
            fmt = "npz"
        elif path.endswith((".metis", ".graph")):
            fmt = "metis"
        else:
            fmt = "edgelist"
    if fmt == "npz":
        save_npz(graph, path)
    elif fmt == "metis":
        write_metis(graph, path)
    else:
        write_edgelist(graph, path)


# ----------------------------------------------------------------- detect
def _cmd_detect(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    graph = _load_graph(args.input, args.format)
    termination = TerminationCriteria(
        coverage=args.coverage if args.coverage >= 0 else None,
        min_communities=args.min_communities,
        max_community_size=args.max_community_size,
        max_levels=args.max_levels,
    )
    tracer = _make_tracer(args)

    if args.algorithm == "parallel":
        scorer = create_kernel("scorer", args.scorer)
        # --tuner-table swaps the calibrated coefficients behind the
        # auto-selection policy; it only matters when a phase is "auto".
        selector = None
        if args.tuner_table:
            from repro.core.tuner import CostModelPolicy, load_cost_table

            if AUTO_KERNEL not in (args.matcher, args.contractor):
                print(
                    "note: --tuner-table has no effect without "
                    "--matcher auto / --contractor auto",
                    file=sys.stderr,
                )
            try:
                selector = CostModelPolicy(load_cost_table(args.tuner_table))
            except (OSError, ValueError) as exc:
                print(f"error: --tuner-table: {exc}", file=sys.stderr)
                return 2
        # --spill-dir without an explicit directory (i.e. --memory-budget
        # alone) still spills somewhere: a memory breach must land on the
        # spill rung, not on abort.
        spill_dir = args.spill_dir
        spill_dir_owned = False
        if (
            spill_dir is None
            and args.memory_budget is not None
        ):
            import tempfile

            spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
            spill_dir_owned = True
        # --backend names an execution backend explicitly; bare
        # --workers N keeps its historical meaning of a process pool.
        backend = None
        if args.backend == "sharded":
            from repro.parallel.backends import ShardedBackend

            backend = ShardedBackend(
                spill_dir=args.spill_dir, n_shards=args.shards
            )
        elif args.backend is not None or args.workers > 1:
            backend = create_backend(
                args.backend or "process-pool",
                n_workers=args.workers if args.workers > 1 else None,
            )
            if backend.n_workers > 1 and not hasattr(
                scorer, "score_with_backend"
            ):
                print(
                    f"note: the {args.scorer} scorer does not support "
                    f"backend execution; scoring in-process",
                    file=sys.stderr,
                )
        guardian = None
        if (
            args.audit != "off"
            or args.phase_deadline is not None
            or args.memory_budget is not None
        ):
            guardian = RunGuardian(
                args.audit,
                phase_deadline_s=args.phase_deadline,
                memory_budget_mb=args.memory_budget,
                spill_dir=spill_dir,
                spill_shards=args.shards,
            )
        tr = as_tracer(tracer)
        telemetry = _make_telemetry(args, tracer)
        memprof = _make_memprof(args)
        if telemetry is not None:
            telemetry.start()
        if memprof is not None:
            memprof.start()
        live_stopped = False

        def _stop_live(state: "str | None" = None) -> None:
            # Idempotent: the abort path stops early (so the final
            # counter samples land in the emitted trace) and the
            # ``finally`` is the join-on-any-exception backstop.
            nonlocal live_stopped
            if live_stopped:
                return
            live_stopped = True
            if telemetry is not None:
                telemetry.stop(state=state)
            if memprof is not None:
                _print_memprof(memprof.stop())

        try:
            with tr.span(
                "run", graph=args.input, algorithm="parallel"
            ) as rsp:
                result = detect_communities(
                    graph,
                    scorer,
                    termination=termination,
                    matcher=args.matcher,
                    contractor=args.contractor,
                    selector=selector,
                    tracer=tracer,
                    checkpoint_dir=args.checkpoint_dir,
                    resume=args.resume,
                    backend=backend,
                    guardian=guardian,
                    telemetry=telemetry,
                    memprof=memprof,
                )
                rsp.set(
                    items=graph.n_edges,
                    n_levels=result.n_levels,
                    terminated_by=result.terminated_by,
                    backend=backend.name if backend is not None else "serial",
                )
        except RunAbortedError as exc:
            _stop_live(state="failed")
            if backend is not None and hasattr(backend, "release"):
                backend.release()
            if spill_dir_owned:
                import shutil

                shutil.rmtree(spill_dir, ignore_errors=True)
            print(f"error: {exc}", file=sys.stderr)
            if exc.report is not None:
                print(f"resilience: {exc.report.summary()}", file=sys.stderr)
            if exc.checkpoint_path is not None:
                print(
                    f"checkpoint written to {exc.checkpoint_path}; re-run "
                    "with --resume to continue from the completed levels",
                    file=sys.stderr,
                )
            # the trace carries the guardian breach/degrade spans — the
            # forensics are most valuable exactly when the run aborted
            _emit_trace(
                tracer,
                args,
                meta={"command": "detect", "input": args.input, "aborted": True},
            )
            return 3
        finally:
            _stop_live()
        partition = result.partition
        # The spill stores have served their purpose once the dendrogram
        # exists; drop backend-owned state and any implicit temp dir.
        if backend is not None and hasattr(backend, "release"):
            backend.release()
        if spill_dir_owned:
            import shutil

            shutil.rmtree(spill_dir, ignore_errors=True)
        print(
            f"parallel agglomeration: {result.n_levels} levels, "
            f"terminated by {result.terminated_by}",
            file=sys.stderr,
        )
        if result.tuner is not None:
            picks = "; ".join(
                f"{kind}: "
                + ", ".join(
                    f"{name}×{n}" for name, n in sorted(counts.items())
                )
                for kind, counts in sorted(
                    (result.tuner.get("selected") or {}).items()
                )
            )
            print(
                f"tuner ({result.tuner.get('policy', '?')}): "
                f"{picks or 'no decisions'}",
                file=sys.stderr,
            )
        if args.checkpoint_dir or result.recovery.any_recovery():
            print(
                f"resilience: {result.recovery.summary()}", file=sys.stderr
            )
    elif args.algorithm == "cnm":
        partition, _ = cnm_communities(graph)
    elif args.algorithm == "louvain":
        partition, _ = louvain_communities(graph, seed=args.seed)
    else:
        partition = label_propagation_communities(graph, seed=args.seed)

    if args.refine:
        partition, moves = refine_partition(graph, partition)
        print(f"refinement: {moves} vertex moves", file=sys.stderr)

    print(
        f"communities : {partition.n_communities}\n"
        f"modularity  : {modularity(graph, partition):.6f}\n"
        f"coverage    : {coverage(graph, partition):.6f}\n"
        f"conductance : {average_conductance(graph, partition):.6f}",
        file=sys.stderr,
    )
    out = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        for v, c in enumerate(partition.labels.tolist()):
            out.write(f"{v}\t{c}\n")
    finally:
        if out is not sys.stdout:
            out.close()

    # after the labels are safely written: a bad --trace-out path must
    # not cost the user the detection results
    _emit_trace(
        tracer,
        args,
        meta={
            "command": "detect",
            "input": args.input,
            "algorithm": args.algorithm,
            "scorer": args.scorer,
            "matcher": args.matcher,
            "contractor": args.contractor,
            "backend": args.backend or "serial",
            "workers": args.workers,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
    )
    return 0


# --------------------------------------------------------------- generate
def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.generators import (
        planted_partition_graph,
        rmat_graph,
        webgraph,
    )

    if args.model == "rmat":
        graph = rmat_graph(args.scale, args.edge_factor, seed=args.seed)
    elif args.model == "planted":
        graph = planted_partition_graph(args.vertices, seed=args.seed)
    else:
        graph = webgraph(args.vertices, seed=args.seed)
    _save_graph(graph, args.output, args.format)
    print(
        f"wrote {graph.n_vertices} vertices, {graph.n_edges} edges "
        f"to {args.output}",
        file=sys.stderr,
    )
    return 0


# ------------------------------------------------------------------- info
def _cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args.input, args.format)
    deg = graph.edges.degrees()
    print(f"vertices      : {graph.n_vertices}")
    print(f"edges         : {graph.n_edges}")
    print(f"total weight  : {graph.total_weight():g}")
    print(f"self weight   : {graph.internal_weight():g}")
    if graph.n_vertices:
        print(f"degree min/med/max : {deg.min()}/{int(np.median(deg))}/{deg.max()}")
    print(f"memory words  : {graph.memory_words()}")
    from repro.graph import connected_components

    _, k = connected_components(graph.n_vertices, graph.edges.ei, graph.edges.ej)
    print(f"components    : {k}")
    return 0


# ---------------------------------------------------------------- analyze
def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import community_summary
    from repro.bench.reporting import format_table
    from repro.metrics import (
        expansion,
        intercluster_conductance,
        performance,
    )

    graph = _load_graph(args.input, args.format)
    labels = np.loadtxt(args.labels, dtype=np.int64, usecols=1)
    if len(labels) != graph.n_vertices:
        print(
            f"error: {args.labels} has {len(labels)} labels for a graph "
            f"with {graph.n_vertices} vertices",
            file=sys.stderr,
        )
        return 1
    partition = Partition.from_labels(labels)

    print(f"communities            : {partition.n_communities}")
    print(f"modularity             : {modularity(graph, partition):.6f}")
    print(f"coverage               : {coverage(graph, partition):.6f}")
    print(f"mean conductance       : {average_conductance(graph, partition):.6f}")
    print(f"DIMACS performance     : {performance(graph, partition):.6f}")
    print(f"DIMACS expansion       : {expansion(graph, partition):.6f}")
    print(
        "intercluster conduct.  : "
        f"{intercluster_conductance(graph, partition):.6f}"
    )
    stats = community_summary(graph, partition)
    rows = stats.as_rows(top=args.top)
    print()
    print(
        format_table(
            ["community", "size", "internal", "cut", "density", "conductance"],
            rows,
            title=f"largest {len(rows)} communities",
        )
    )
    return 0


# ---------------------------------------------------------------- kernels
def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.core import KERNEL_KINDS, kernel_catalog

    kinds = [args.kind] if args.kind else list(KERNEL_KINDS)
    first = True
    for kind in kinds:
        infos = kernel_catalog(kind)
        if not first:
            print()
        first = False
        rows = [
            [
                i.name,
                "yes" if i.supports_sharded else "no",
                "yes" if i.deterministic else "no",
                ",".join(i.cost_features),
                i.regime or "-",
                i.description or "-",
            ]
            for i in infos
        ]
        print(
            format_table(
                [
                    "name",
                    "sharded",
                    "deterministic",
                    "cost features",
                    "regime",
                    "description",
                ],
                rows,
                title=f"{kind}s ({len(infos)} registered)",
            )
        )
    print(
        "\nPass --matcher/--contractor auto to let the per-level tuner "
        "choose among these (docs/TUNING.md).",
        file=sys.stderr,
    )
    return 0


# ------------------------------------------------------------------ bench
def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        format_scaling,
        format_table1,
        format_table2,
        format_table3,
    )
    from repro.bench.experiments import figure1, figure3, table3

    tracer = _make_tracer(args)
    if args.exhibit == "table1":
        print(format_table1())
    elif args.exhibit == "table2":
        from repro.bench import load_dataset

        measured = {
            name: (g.n_vertices, g.n_edges)
            for name, g in (
                (n, load_dataset(n, scale=args.scale, seed=args.seed))
                for n in ("rmat-24-16", "soc-LiveJournal1", "uk-2007-05")
            )
        }
        print(format_table2(measured))
    elif args.exhibit == "table3":
        print(
            format_table3(
                table3(scale=args.scale, seed=args.seed, tracer=tracer)
            )
        )
    elif args.exhibit in ("figure1", "figure2"):
        data = figure1(scale=args.scale, seed=args.seed, tracer=tracer)
        speedup = args.exhibit == "figure2"
        for g, sweeps in data.sweeps.items():
            for _, sr in sweeps.items():
                print(format_scaling(sr, speedup=speedup))
                print()
    else:  # figure3
        data = figure3(scale=args.scale, seed=args.seed, tracer=tracer)
        for _, sr in data.sweeps["uk-2007-05"].items():
            print(format_scaling(sr))
            print(format_scaling(sr, speedup=True))
            print()
    _emit_trace(
        tracer,
        args,
        meta={
            "command": "bench",
            "exhibit": args.exhibit,
            "scale": args.scale,
            "seed": args.seed,
        },
    )
    return 0


# ---------------------------------------------------------------- compare
def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.bench.ledger import (
        compare_ledgers,
        config_drift,
        read_ledger,
        render_comparison,
    )
    from repro.errors import ReproError

    try:
        base = read_ledger(args.base)
        new = read_ledger(args.new)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    drift = config_drift(base, new)
    if drift:
        if not args.ignore_config:
            print(
                "error: the ledgers were produced by different "
                "kernel/tuner configurations — a timing diff between "
                "them compares different code, not a regression:",
                file=sys.stderr,
            )
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            print(
                "(re-run the benchmark with matching --matcher/"
                "--contractor/--scorer, or pass --ignore-config to "
                "diff anyway)",
                file=sys.stderr,
            )
            return 2
        print(
            "warning: comparing across config drift (--ignore-config):",
            file=sys.stderr,
        )
        for line in drift:
            print(f"  {line}", file=sys.stderr)
    cmp = compare_ledgers(
        base,
        new,
        tolerance=args.tolerance,
        noise_floor_s=args.noise_floor,
        quality_tolerance=args.quality_tolerance,
    )
    print(render_comparison(cmp))
    return 1 if cmp.regressed else 0


# ----------------------------------------------------------------- report
def _cmd_report(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs import read_trace
    from repro.obs.report import markdown_to_html, render_report, write_report

    try:
        trace = read_trace(args.trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ledger = None
    if args.ledger:
        from repro.bench.ledger import read_ledger

        try:
            ledger = read_ledger(args.ledger)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    title = args.title or f"repro run report — {args.trace}"
    if args.output == "-":
        md = render_report(trace, ledger=ledger, title=title)
        print(markdown_to_html(md, title=title) if args.html else md)
    else:
        write_report(
            trace,
            args.output,
            ledger=ledger,
            title=title,
            as_html=args.html,
        )
        print(f"report: written to {args.output}", file=sys.stderr)
    return 0


# ------------------------------------------------------------------ trend
def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.bench.ascii_plot import ascii_xy_plot
    from repro.bench.ledger import compare_ledgers, read_ledger
    from repro.bench.reporting import format_table
    from repro.errors import ReproError

    try:
        ledgers = [(path, read_ledger(path)) for path in args.ledgers]
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    ledgers.sort(key=lambda pair: pair[1].created_unix)

    def metric_of(record) -> float | None:
        if args.metric == "end_to_end":
            return record.min_total_s() if record.repetitions else None
        return record.min_phase_s(args.metric)

    rows = []
    points = []
    for idx, (path, record) in enumerate(ledgers):
        value = metric_of(record)
        q = record.best_final_modularity()
        rows.append(
            [
                str(idx),
                path,
                "-" if value is None else f"{value:.4f}",
                "-" if q is None else f"{q:.4f}",
            ]
        )
        if value is not None and value > 0:
            points.append((float(idx + 1), value))
    print(
        format_table(
            ["run", "ledger", f"{args.metric} s (min)", "modularity"],
            rows,
            title=f"benchmark trend — {args.metric} over "
            f"{len(ledgers)} ledger(s), oldest first",
        )
    )
    if len(points) >= 2:
        print()
        print(
            ascii_xy_plot(
                {args.metric: points},
                title=f"{args.metric} trajectory (min-of-N seconds)",
                xlabel="run (1 = oldest)",
                ylabel="seconds",
            )
        )

    regressions = []
    for (_, older), (new_path, newer) in zip(ledgers, ledgers[1:]):
        cmp = compare_ledgers(
            older,
            newer,
            tolerance=args.tolerance,
            noise_floor_s=args.noise_floor,
            quality_tolerance=args.quality_tolerance,
        )
        for r in cmp.regressions():
            regressions.append((new_path, r.metric, r.ratio))
    if regressions:
        print()
        print("regressions between consecutive runs:")
        for path, metric, ratio in regressions:
            print(f"  {path}: {metric} {100.0 * ratio:+.1f}%")
        return 1 if args.strict else 0
    print("\nno regression between consecutive runs")
    return 0


# ------------------------------------------------------------------ watch
def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.telemetry import read_status, render_status

    def render_once() -> int:
        try:
            status = read_status(args.path)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_status(status, stall_after_s=args.stall_after))
        return 0

    if args.once:
        return render_once()
    try:
        while True:
            # Home the cursor and clear so the view updates in place.
            sys.stdout.write("\x1b[2J\x1b[H")
            rc = render_once()
            if rc != 0:
                return rc
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


# ---------------------------------------------------------------- stream
def _make_stream_service(args: argparse.Namespace) -> "DetectionService":
    """Build the streaming service (+ fault plan) the stream verbs share."""
    from repro.resilience.faults import FaultPlan
    from repro.resilience.retry import RetryPolicy
    from repro.stream.service import (
        CRASH_POINTS,
        DetectionService,
        StreamConfig,
    )

    faults = None
    if getattr(args, "kill_after", None):
        try:
            point, _, idx = args.kill_after.rpartition(":")
            if point not in CRASH_POINTS:
                raise ValueError(
                    f"unknown crash point {point!r} "
                    f"(one of {', '.join(CRASH_POINTS)})"
                )
            faults = FaultPlan.sigkill_at(point, [int(idx)])
        except ValueError as exc:
            raise SystemExit(f"error: --kill-after: {exc}")
    config = StreamConfig(
        scorer=args.scorer,
        matcher=args.matcher,
        contractor=args.contractor,
        seed=args.seed,
        snapshot_every=args.snapshot_every,
        snapshot_keep=args.snapshot_keep,
        drift_threshold=(
            args.drift_threshold if args.drift_threshold > 0 else None
        ),
        repair_deadline_s=args.repair_deadline,
        retry=RetryPolicy(
            max_retries=2,
            backoff_base_s=0.01,
            backoff_cap_s=0.25,
            jitter=args.retry_jitter,
            jitter_seed=args.seed,
        ),
    )
    return DetectionService(args.data_dir, config, faults=faults)


def _stream_epilogue(args: argparse.Namespace, svc) -> int:
    """Shared post-run steps of the stream verbs: labels out + verify."""
    if getattr(args, "labels_out", None):
        labels = svc.labels
        with open(args.labels_out, "w", encoding="utf-8") as fh:
            if labels is not None:
                for v, c in enumerate(labels.tolist()):
                    fh.write(f"{v}\t{c}\n")
        print(f"labels: written to {args.labels_out}", file=sys.stderr)
    if getattr(args, "verify", False):
        # Re-open briefly: verify() re-scans the WAL, which close()
        # released.  The check must see exactly the durable state a
        # future recovery would.
        svc.open()
        try:
            outcome = svc.verify()
        finally:
            svc.close()
        status = "ok" if outcome["ok"] else "FAILED"
        detail = ", ".join(
            f"{name}={'ok' if passed else 'FAIL'}"
            for name, passed in outcome["checks"].items()
        )
        print(f"verify: {status} ({detail})", file=sys.stderr)
        if not outcome["ok"]:
            return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ReproError
    from repro.stream.replay import ReplayHarness, generate_edge_log

    log_path = args.log
    if args.generate:
        if log_path is None:
            print("error: --generate requires --log PATH", file=sys.stderr)
            return 2
        generate_edge_log(
            log_path,
            n_batches=args.batches,
            batch_size=args.batch_size,
            n_vertices=args.vertices,
            n_blocks=args.blocks,
            p_delete=args.p_delete,
            drift_every=args.drift_every,
            seed=args.log_seed,
        )
        print(
            f"generated {args.batches}-batch edge log at {log_path}",
            file=sys.stderr,
        )
    if log_path is None:
        print("error: --log PATH is required", file=sys.stderr)
        return 2
    svc = _make_stream_service(args)
    harness = ReplayHarness(
        svc, bench_path=args.bench_out, report_path=args.report_out
    )
    try:
        summary = harness.run(log_path, max_batches=args.max_batches)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(_json.dumps(summary, indent=2))
    if svc.report.any_recovery():
        print(f"resilience: {svc.report.summary()}", file=sys.stderr)
    return _stream_epilogue(args, svc)


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json

    from repro.errors import ReproError
    from repro.stream.replay import EDGE_LOG_HEADER

    svc = _make_stream_service(args)
    try:
        svc.open()
    except ReproError as exc:
        print(f"error: recovery failed: {exc}", file=sys.stderr)
        return 3
    if svc.report.any_recovery():
        print(f"resilience: {svc.report.summary()}", file=sys.stderr)
    print(
        f"serving from {args.data_dir} at batch {svc.batch_seq} "
        f"({svc.n_vertices} vertices, {svc.n_communities} communities); "
        "reading edge events from stdin",
        file=sys.stderr,
    )

    cur_t: int | None = None
    ii: list[int] = []
    jj: list[int] = []
    ww: list[float] = []
    op: list[int] = []

    def _flush() -> None:
        nonlocal ii, jj, ww, op
        if cur_t is None or not ii:
            ii, jj, ww, op = [], [], [], []
            return
        res = svc.ingest(
            np.asarray(ii),
            np.asarray(jj),
            np.asarray(ww),
            np.asarray(op, dtype=np.int8),
        )
        print(
            _json.dumps(
                {
                    "seq": res.seq,
                    "applied": res.applied,
                    "n_vertices": res.n_vertices,
                    "n_edges": res.n_edges,
                    "n_communities": res.n_communities,
                    "modularity": res.modularity,
                    "coverage": res.coverage,
                    "latency_s": res.latency_s,
                    "rerun": res.rerun,
                }
            ),
            flush=True,
        )
        ii, jj, ww, op = [], [], [], []

    rc = 0
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#") or line == EDGE_LOG_HEADER:
                continue
            parts = line.split()
            if len(parts) != 5 or parts[1] not in ("+", "-"):
                print(
                    f"error: malformed edge event {line!r} "
                    "(want: t +|- i j w)",
                    file=sys.stderr,
                )
                rc = 2
                break
            t = int(parts[0])
            if cur_t is not None and t != cur_t:
                _flush()
            cur_t = t
            ii.append(int(parts[2]))
            jj.append(int(parts[3]))
            ww.append(float(parts[4]))
            op.append(1 if parts[1] == "+" else -1)
        else:
            _flush()
    except KeyboardInterrupt:
        pass
    finally:
        svc.close()
    if rc != 0:
        return rc
    return _stream_epilogue(args, svc)


def _add_stream_arguments(p: argparse.ArgumentParser) -> None:
    """Service knobs shared by ``repro serve`` and ``repro replay``."""
    p.add_argument(
        "--data-dir",
        required=True,
        metavar="DIR",
        help="durable service state (wal/ + snapshots/); recovery "
        "replays whatever a previous process left here",
    )
    p.add_argument(
        "--scorer", default="modularity", choices=kernel_names("scorer")
    )
    p.add_argument(
        "--matcher", default="worklist", choices=kernel_names("matcher")
    )
    p.add_argument(
        "--contractor", default="bucket", choices=kernel_names("contractor")
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        metavar="N",
        help="persist a snapshot every N batches (default: 8)",
    )
    p.add_argument(
        "--snapshot-keep",
        type=int,
        default=3,
        metavar="N",
        help="snapshots retained on disk (default: 3)",
    )
    p.add_argument(
        "--drift-threshold",
        type=float,
        default=0.1,
        metavar="DQ",
        help="modularity drop below the last full detection that "
        "triggers a full rerun (<= 0 disables; default: 0.1)",
    )
    p.add_argument(
        "--repair-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per incremental repair; a breach "
        "triggers a (journaled) full rerun",
    )
    p.add_argument(
        "--retry-jitter",
        type=float,
        default=0.0,
        metavar="F",
        help="decorrelated-jitter strength for repair retries "
        "(0 disables; see docs/RESILIENCE.md)",
    )
    p.add_argument(
        "--kill-after",
        metavar="POINT:INDEX",
        default=None,
        help="SIGKILL this process the INDEX-th time it passes the "
        "named crash point (wal-append, apply, snapshot, post-snapshot, "
        "wal-rerun) — the kill-chaos harness's deterministic crash",
    )
    p.add_argument(
        "--labels-out",
        metavar="PATH",
        default=None,
        help="write the final vertex\\tcommunity labels",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="after the run, re-open the durable state and fail "
        "(exit 1) unless every structural self-check passes",
    )


# ----------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable multi-threaded community detection "
        "(Riedy, Meyerhenke, Bader; IPDPSW 2012)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log per-level progress to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("detect", help="cluster a graph file")
    p.add_argument("input")
    p.add_argument("-o", "--output", default="-", help="labels file (default stdout)")
    p.add_argument("--format", default="auto", choices=["auto", "edgelist", "metis", "npz"])
    p.add_argument(
        "--algorithm",
        default="parallel",
        choices=["parallel", "cnm", "louvain", "labelprop"],
    )
    p.add_argument(
        "--scorer", default="modularity", choices=kernel_names("scorer")
    )
    p.add_argument(
        "--matcher",
        default="worklist",
        choices=[*kernel_names("matcher"), AUTO_KERNEL],
        help="matching kernel, or 'auto' to pick per level via the "
        "tuner (see docs/TUNING.md)",
    )
    p.add_argument(
        "--contractor",
        default="bucket",
        choices=[*kernel_names("contractor"), AUTO_KERNEL],
        help="contraction kernel, or 'auto' to pick per level via the "
        "tuner (see docs/TUNING.md)",
    )
    p.add_argument(
        "--tuner-table",
        metavar="PATH",
        default=None,
        help="cost-table JSON for --matcher/--contractor auto (a bare "
        "table or a BENCH_kernels.json shootout ledger; default: the "
        "built-in table calibrated by bench/shootout.py)",
    )
    p.add_argument(
        "--coverage",
        type=float,
        default=-1.0,
        help="stop at this coverage (negative = run to local maximum)",
    )
    p.add_argument("--min-communities", type=int, default=1)
    p.add_argument("--max-community-size", type=int, default=None)
    p.add_argument("--max-levels", type=int, default=None)
    p.add_argument("--refine", action="store_true", help="run local refinement")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="score each level on a supervised worker-process pool "
        "(modularity scorer only; see docs/RESILIENCE.md)",
    )
    p.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="execution backend phases run chunked work on "
        "(default: serial, or process-pool when --workers > 1; "
        "see docs/ARCHITECTURE.md)",
    )
    p.add_argument(
        "--audit",
        default="sample",
        choices=AUDIT_MODES,
        help="run-guardian invariant audit strictness: 'off' disables "
        "the auditor, 'sample' (default) runs cheap conservation checks "
        "every level and recomputes quality on sampled levels, 'full' "
        "verifies everything every level (see docs/RESILIENCE.md)",
    )
    p.add_argument(
        "--phase-deadline",
        type=float,
        metavar="SECONDS",
        default=None,
        help="soft per-phase deadline; a breach steps the guardian's "
        "degradation ladder (serial backend, smaller chunks, lighter "
        "audits, finally checkpoint-and-abort)",
    )
    p.add_argument(
        "--memory-budget",
        type=float,
        metavar="MB",
        default=None,
        help="soft resident-memory budget sampled after each phase; a "
        "breach first migrates the run onto the out-of-core sharded "
        "backend (spill rung; see docs/OUT_OF_CORE.md), then steps the "
        "degradation ladder",
    )
    p.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="directory for out-of-core spill stores (per-level sharded "
        "graph files); used by the guardian's spill rung and by "
        "--backend sharded (default: a private temp dir)",
    )
    p.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help="edge-shard count for spilled graphs (default 8)",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist the loop state after every level for crash recovery",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest valid checkpoint in --checkpoint-dir",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a JSONL wall-clock run trace (see docs/OBSERVABILITY.md)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print the per-level phase-time table to stderr",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write run metrics in Prometheus text exposition format",
    )
    p.add_argument(
        "--perfetto-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON timeline "
        "(open in ui.perfetto.dev or chrome://tracing)",
    )
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="sample RSS/GC/spill/worker counters in the background and "
        "record them into the trace (parallel algorithm only)",
    )
    p.add_argument(
        "--telemetry-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="sampling period for --telemetry (default: 0.25)",
    )
    p.add_argument(
        "--status-file",
        metavar="PATH",
        default=None,
        help="write an atomically-updated status.json heartbeat for "
        "`repro watch` (implies --telemetry)",
    )
    p.add_argument(
        "--memprof",
        action="store_true",
        help="attribute memory per pipeline phase with tracemalloc "
        "(parallel algorithm only; adds allocation-tracking overhead)",
    )
    p.set_defaults(func=_cmd_detect)

    p = sub.add_parser("generate", help="generate a synthetic graph file")
    p.add_argument("model", choices=["rmat", "planted", "webgraph"])
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--format", default="auto", choices=["auto", "edgelist", "metis", "npz"])
    p.add_argument("--scale", type=int, default=12, help="R-MAT scale")
    p.add_argument("--edge-factor", type=int, default=16)
    p.add_argument("--vertices", type=int, default=10_000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("info", help="print graph statistics")
    p.add_argument("input")
    p.add_argument("--format", default="auto", choices=["auto", "edgelist", "metis", "npz"])
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser(
        "analyze", help="summarize a community assignment against its graph"
    )
    p.add_argument("input", help="graph file")
    p.add_argument("labels", help="vertex\\tcommunity file from `detect`")
    p.add_argument("--format", default="auto", choices=["auto", "edgelist", "metis", "npz"])
    p.add_argument("--top", type=int, default=10, help="communities to list")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "kernels",
        help="list registered kernels with capability metadata",
        description="List every kernel registered under each phase kind "
        "(scorer/matcher/contractor) with its capability descriptor: "
        "sharded-capability (eligible after an out-of-core spill), "
        "determinism, the cost-model features the auto-tuner uses, and "
        "its preferred regime.  This is the candidate pool "
        "--matcher/--contractor auto selects from per level.",
    )
    p.add_argument(
        "--kind",
        default=None,
        choices=["scorer", "matcher", "contractor"],
        help="restrict the listing to one phase kind",
    )
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser("bench", help="regenerate a paper exhibit")
    p.add_argument(
        "exhibit",
        choices=["table1", "table2", "table3", "figure1", "figure2", "figure3"],
    )
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a JSONL wall-clock run trace of the exhibit's runs",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print per-run phase-time tables to stderr",
    )
    p.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write run metrics in Prometheus text exposition format",
    )
    p.add_argument(
        "--perfetto-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON timeline of the exhibit's runs",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "compare",
        help="compare two benchmark ledgers; exit 1 on regression",
        description="Compare two BENCH_*.json ledgers (see "
        "docs/OBSERVABILITY.md) phase by phase using min-of-N repetition "
        "times.  Exits 1 iff a phase, the end-to-end time, or final "
        "modularity regresses beyond tolerance; 2 on unreadable input.",
    )
    p.add_argument("base", help="baseline ledger (BENCH_*.json)")
    p.add_argument("new", help="candidate ledger to judge against the baseline")
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative slowdown allowed per phase (default 0.05 = 5%%)",
    )
    p.add_argument(
        "--noise-floor",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="absolute slowdown below which a delta is noise (default 5 ms)",
    )
    p.add_argument(
        "--quality-tolerance",
        type=float,
        default=0.02,
        help="absolute final-modularity drop allowed (default 0.02)",
    )
    p.add_argument(
        "--ignore-config",
        action="store_true",
        help="diff even when the ledgers' kernel/tuner configs differ "
        "(by default config drift is an error, exit 2)",
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "report",
        help="render a run trace (+ optional ledger) into a repro report",
        description="Render a JSONL run trace — plus an optional benchmark "
        "ledger — into a self-contained Markdown (or HTML) report: phase "
        "breakdown, per-level timeline with quality curve, hotspot "
        "ranking, worker-lane/Amdahl analysis, and the trace consistency "
        "verdict (see docs/OBSERVABILITY.md).",
    )
    p.add_argument("trace", help="JSONL trace from --trace-out")
    p.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="BENCH_*.json ledger to fold in (quality curve, repetitions)",
    )
    p.add_argument(
        "-o",
        "--output",
        default="-",
        help="report file (default stdout)",
    )
    p.add_argument(
        "--html",
        action="store_true",
        help="emit a self-contained HTML page instead of Markdown",
    )
    p.add_argument(
        "--title", default=None, help="report title (default: trace path)"
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "trend",
        help="plot a metric across benchmark ledgers; flag regressions",
        description="Order BENCH_*.json ledgers by creation time, tabulate "
        "and plot one metric's min-of-N trajectory, and flag regressions "
        "between consecutive runs using the same tolerance logic as "
        "`repro compare`.  Exits 1 only with --strict.",
    )
    p.add_argument(
        "ledgers", nargs="+", help="two or more BENCH_*.json ledgers"
    )
    p.add_argument(
        "--metric",
        default="end_to_end",
        choices=["score", "match", "contract", "total", "end_to_end"],
        help="which min-of-N metric to plot (default end_to_end)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative slowdown allowed between consecutive runs",
    )
    p.add_argument(
        "--noise-floor",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="absolute slowdown below which a delta is noise",
    )
    p.add_argument(
        "--quality-tolerance",
        type=float,
        default=0.02,
        help="absolute final-modularity drop allowed",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any consecutive pair regresses",
    )
    p.set_defaults(func=_cmd_trend)

    p = sub.add_parser(
        "watch",
        help="live ASCII view of a running run's status.json",
        description="Render the status.json heartbeat a telemetry-enabled "
        "run (`repro detect --status-file ...`) keeps updated.  Refreshes "
        "in place until interrupted; flags stale heartbeats and stalled "
        "phases.",
    )
    p.add_argument(
        "path",
        help="status.json file, or the directory containing one",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit (no screen clearing)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="refresh period (default: 1.0)",
    )
    p.add_argument(
        "--stall-after",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds in one phase before flagging a stall (default: 30)",
    )
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser(
        "replay",
        help="stream a timestamped edge log through the detection service",
        description="Replay an edge log (see docs/STREAMING.md) through "
        "the durable streaming service: every batch is journaled in the "
        "write-ahead log before it mutates state, per-batch latency and "
        "quality are ledgered into a BENCH_stream.json, and re-running "
        "the same command after a crash (or --kill-after) resumes from "
        "the recovered state — the final partition is bit-identical to "
        "an uninterrupted run.",
    )
    p.add_argument(
        "--log",
        metavar="PATH",
        default=None,
        help="edge log to replay (written by --generate if asked)",
    )
    p.add_argument(
        "--generate",
        action="store_true",
        help="first synthesize a deterministic drifting edge log at --log",
    )
    p.add_argument(
        "--batches", type=int, default=24, help="batches to generate"
    )
    p.add_argument(
        "--batch-size", type=int, default=64, help="events per batch"
    )
    p.add_argument(
        "--vertices", type=int, default=96, help="vertex universe size"
    )
    p.add_argument(
        "--blocks", type=int, default=4, help="planted community count"
    )
    p.add_argument(
        "--p-delete",
        type=float,
        default=0.15,
        help="fraction of events deleting a live edge",
    )
    p.add_argument(
        "--drift-every",
        type=int,
        default=0,
        metavar="N",
        help="rotate planted memberships every N batches (0 freezes "
        "them; rotation makes modularity genuinely drift)",
    )
    p.add_argument(
        "--log-seed", type=int, default=0, help="generator seed"
    )
    p.add_argument(
        "--max-batches",
        type=int,
        default=None,
        metavar="N",
        help="stop after batch sequence N",
    )
    p.add_argument(
        "--bench-out",
        metavar="PATH",
        default="BENCH_stream.json",
        help="per-batch latency/quality ledger (default: "
        "BENCH_stream.json; merged by sequence across restarts)",
    )
    p.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="write the recovery report JSON",
    )
    _add_stream_arguments(p)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "serve",
        help="journal-and-apply edge events read from stdin",
        description="Run the streaming detection service interactively: "
        "recover whatever state --data-dir holds, then read edge events "
        "(`t +|- i j w`, batched by timestamp) from stdin, journaling "
        "each batch in the WAL before applying it and printing one JSON "
        "result line per batch.  EOF (or Ctrl-C) snapshots and exits.",
    )
    _add_stream_arguments(p)
    p.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = None
    if args.verbose:
        from repro.util.log import enable_console_logging

        handler = enable_console_logging()
    try:
        return args.func(args)
    finally:
        if handler is not None:
            import logging

            logging.getLogger("repro").removeHandler(handler)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
