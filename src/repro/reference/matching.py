"""Reference locally-dominant matching.

Plain-Python transcription of §IV-B's worklist algorithm: sweep the
unmatched vertices, let each choose its best live edge under the same
total order as :mod:`repro.core.matching` (score, then hashed edge
priority), match mutual choices, repeat.  Output is bit-identical to the
vectorized kernel; the property suite asserts so.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import MatchingResult, _edge_priority
from repro.graph.graph import CommunityGraph
from repro.types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["locally_dominant_matching_ref"]


def locally_dominant_matching_ref(
    graph: CommunityGraph, scores: np.ndarray
) -> MatchingResult:
    """See module docstring; returns the same structure as the kernel."""
    e = graph.edges
    n = graph.n_vertices
    if len(scores) != e.n_edges:
        raise ValueError("scores length must equal edge count")

    # Incident positive-scored edges per vertex.
    incident: list[list[int]] = [[] for _ in range(n)]
    for k in range(e.n_edges):
        if scores[k] > 0:
            incident[int(e.ei[k])].append(k)
            incident[int(e.ej[k])].append(k)

    prio = _edge_priority(np.arange(e.n_edges, dtype=np.int64))
    partner = [NO_VERTEX] * n
    matched_edges: list[int] = []
    passes = 0
    failed_claims = 0

    def other(k: int, v: int) -> int:
        a, b = int(e.ei[k]), int(e.ej[k])
        return b if v == a else a

    def live(k: int) -> bool:
        return (
            partner[int(e.ei[k])] == NO_VERTEX
            and partner[int(e.ej[k])] == NO_VERTEX
        )

    while True:
        # Each unmatched vertex picks its best live edge: max score, ties
        # by minimum hashed priority.
        choice: dict[int, int] = {}
        for v in range(n):
            if partner[v] != NO_VERTEX:
                continue
            best = -1
            for k in incident[v]:
                if not live(k):
                    continue
                if best < 0:
                    best = k
                    continue
                if scores[k] > scores[best] or (
                    scores[k] == scores[best] and prio[k] < prio[best]
                ):
                    best = k
            if best >= 0:
                choice[v] = best
        if not choice:
            break
        passes += 1

        new_pairs = 0
        for v, k in choice.items():
            u = other(k, v)
            if choice.get(u) == k:
                if partner[v] == NO_VERTEX and partner[u] == NO_VERTEX:
                    partner[v] = u
                    partner[u] = v
                    matched_edges.append(k)
                    new_pairs += 1
            else:
                failed_claims += 1
        if new_pairs == 0:
            raise AssertionError("reference matching failed to progress")

    matched = np.array(sorted(matched_edges), dtype=np.int64)
    return MatchingResult(
        partner=np.array(partner, dtype=VERTEX_DTYPE),
        matched_edges=matched,
        passes=passes,
        failed_claims=failed_claims,
    )
