"""Reference metrics: one-edge-at-a-time modularity and coverage."""

from __future__ import annotations

from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.reference.scoring import _strengths

__all__ = ["modularity_ref", "coverage_ref"]


def modularity_ref(graph: CommunityGraph, partition: Partition) -> float:
    """Q by direct summation over communities."""
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    w_total = graph.total_weight()
    if w_total == 0:
        return 0.0
    labels = partition.labels.tolist()
    k = partition.n_communities
    internal = [0.0] * k
    volume = [0.0] * k
    for v, s in enumerate(_strengths(graph)):
        volume[labels[v]] += s
        internal[labels[v]] += float(graph.self_weights[v])
    e = graph.edges
    for i, j, w in zip(e.ei.tolist(), e.ej.tolist(), e.w.tolist()):
        if labels[i] == labels[j]:
            internal[labels[i]] += w
    return sum(
        internal[c] / w_total - (volume[c] / (2.0 * w_total)) ** 2
        for c in range(k)
    )


def coverage_ref(graph: CommunityGraph, partition: Partition) -> float:
    """Coverage by direct summation."""
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    w_total = graph.total_weight()
    if w_total == 0:
        return 1.0
    labels = partition.labels.tolist()
    internal = float(graph.self_weights.sum())
    e = graph.edges
    for i, j, w in zip(e.ei.tolist(), e.ej.tolist(), e.w.tolist()):
        if labels[i] == labels[j]:
            internal += w
    return internal / w_total
