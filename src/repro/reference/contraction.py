"""Reference contraction: dict-of-dicts accumulation.

Relabels every edge through the match map and accumulates weights in a
dictionary — the obviously-correct analogue of both the bucket-sort and
hash-chain methods.  The result is converted to the canonical
representation, so it must compare bit-identical to the kernels' output.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import MatchingResult
from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.types import NO_VERTEX, VERTEX_DTYPE

__all__ = ["contract_ref"]


def contract_ref(
    graph: CommunityGraph, matching: MatchingResult
) -> tuple[CommunityGraph, np.ndarray]:
    """Contract ``graph`` by the matching; returns (new graph, mapping)."""
    n = graph.n_vertices
    partner = matching.partner
    if len(partner) != n:
        raise ValueError("matching does not cover the graph")

    # Representative = min(v, partner); dense renumber in sorted order.
    rep = [
        min(v, int(partner[v])) if partner[v] != NO_VERTEX else v
        for v in range(n)
    ]
    reps_sorted = sorted(set(rep))
    dense = {r: k for k, r in enumerate(reps_sorted)}
    mapping = np.array([dense[r] for r in rep], dtype=VERTEX_DTYPE)
    k = len(reps_sorted)

    self_weights = [0.0] * k
    for v in range(n):
        self_weights[mapping[v]] += float(graph.self_weights[v])

    cross: dict[tuple[int, int], float] = {}
    e = graph.edges
    for idx in range(e.n_edges):
        a = int(mapping[e.ei[idx]])
        b = int(mapping[e.ej[idx]])
        w = float(e.w[idx])
        if a == b:
            self_weights[a] += w
        else:
            key = (min(a, b), max(a, b))
            cross[key] = cross.get(key, 0.0) + w

    i = np.array([a for a, _ in cross], dtype=VERTEX_DTYPE)
    j = np.array([b for _, b in cross], dtype=VERTEX_DTYPE)
    w = np.array(list(cross.values()))
    new = from_edges(i, j, w, n_vertices=k)
    new.self_weights[:] += np.array(self_weights)
    return new, mapping
