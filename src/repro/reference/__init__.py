"""Pure-Python reference implementations for differential testing.

The vectorized kernels in :mod:`repro.core` earn their speed with
whole-array index gymnastics that are easy to get subtly wrong; this
subpackage re-implements each primitive as straightforward, obviously-
correct Python over dictionaries and loops, using the *same* total orders
so the outputs are bit-identical.  The property-test suite runs both
implementations against random graphs and asserts exact agreement —
catching vectorization bugs that fixed unit tests would miss.

These references are O(slow); never call them from the algorithm path.
"""

from repro.reference.scoring import modularity_scores_ref, conductance_scores_ref
from repro.reference.matching import locally_dominant_matching_ref
from repro.reference.contraction import contract_ref
from repro.reference.metrics import modularity_ref, coverage_ref

__all__ = [
    "modularity_scores_ref",
    "conductance_scores_ref",
    "locally_dominant_matching_ref",
    "contract_ref",
    "modularity_ref",
    "coverage_ref",
]
