"""Reference edge scorers: literal transcriptions of the §III formulas."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph

__all__ = ["modularity_scores_ref", "conductance_scores_ref"]


def _strengths(graph: CommunityGraph) -> list[float]:
    s = [2.0 * float(w) for w in graph.self_weights]
    for i, j, w in zip(
        graph.edges.ei.tolist(), graph.edges.ej.tolist(), graph.edges.w.tolist()
    ):
        s[i] += w
        s[j] += w
    return s


def modularity_scores_ref(graph: CommunityGraph) -> np.ndarray:
    """ΔQ per edge, one edge at a time."""
    w_total = graph.total_weight()
    m = graph.n_edges
    if w_total == 0:
        return np.zeros(m)
    vol = _strengths(graph)
    out = np.empty(m)
    for k in range(m):
        i = int(graph.edges.ei[k])
        j = int(graph.edges.ej[k])
        w = float(graph.edges.w[k])
        out[k] = w / w_total - vol[i] * vol[j] / (2.0 * w_total**2)
    return out


def conductance_scores_ref(graph: CommunityGraph) -> np.ndarray:
    """Negated Δ(Σ conductance) per edge, one edge at a time."""
    w_total = graph.total_weight()
    m = graph.n_edges
    if w_total == 0:
        return np.zeros(m)
    two_w = 2.0 * w_total
    vol = _strengths(graph)
    selfw = graph.self_weights.tolist()

    def phi(cut: float, v: float) -> float:
        denom = min(v, two_w - v)
        return cut / denom if denom > 0 else 0.0

    out = np.empty(m)
    for k in range(m):
        i = int(graph.edges.ei[k])
        j = int(graph.edges.ej[k])
        w = float(graph.edges.w[k])
        cut_i = vol[i] - 2.0 * selfw[i]
        cut_j = vol[j] - 2.0 * selfw[j]
        merged_cut = cut_i + cut_j - 2.0 * w
        merged_vol = vol[i] + vol[j]
        out[k] = (
            phi(cut_i, vol[i]) + phi(cut_j, vol[j]) - phi(merged_cut, merged_vol)
        )
    return out
