"""Streaming community detection: WAL-journaled incremental updates.

The batch pipeline (:mod:`repro.core`) answers "what are the communities
of this graph"; this package answers "keep the communities current while
the graph changes".  It follows the agglomerative paper's own outlook —
the authors close §VI with streaming graphs as the natural next step for
their matching-based agglomeration — and the same architecture style as
the rest of the repo: small single-purpose modules behind explicit
durability contracts.

* :mod:`repro.stream.delta` — edge insert/delete batches and the
  canonical dynamic edge multiset they mutate;
* :mod:`repro.stream.wal` — the append-only, CRC-checksummed,
  segment-rotated write-ahead log those batches are journaled to
  *before* any in-memory state changes;
* :mod:`repro.stream.store` — validated, quarantining snapshot
  persistence of the service state (the durable base WAL replay starts
  from);
* :mod:`repro.stream.service` — :class:`DetectionService`, the
  journal-then-apply driver that repairs only the neighborhoods a batch
  touched and escalates to a full re-detection when quality drifts;
* :mod:`repro.stream.replay` — the edge-log replay harness behind the
  ``repro serve`` / ``repro replay`` CLI verbs and the kill-chaos CI
  gate.

Robustness contract: SIGKILL the process anywhere, restart, and the
recovered partition is bit-identical to an uninterrupted run over the
same edge log (see docs/STREAMING.md for the proof obligations).
"""

from repro.stream.delta import EdgeBatch, EdgeStore, decode_batch, encode_batch
from repro.stream.replay import ReplayHarness, generate_edge_log, read_edge_log
from repro.stream.service import BatchResult, DetectionService, StreamConfig
from repro.stream.store import ServiceState, SnapshotStore
from repro.stream.wal import WalRecord, WalRecovery, WriteAheadLog

__all__ = [
    "EdgeBatch",
    "EdgeStore",
    "encode_batch",
    "decode_batch",
    "WriteAheadLog",
    "WalRecord",
    "WalRecovery",
    "SnapshotStore",
    "ServiceState",
    "DetectionService",
    "StreamConfig",
    "BatchResult",
    "ReplayHarness",
    "generate_edge_log",
    "read_edge_log",
]
