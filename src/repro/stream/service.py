"""The streaming detection service: journal, apply, repair, degrade.

:class:`DetectionService` keeps a community partition current while
edges arrive, under one invariant — **journal before mutate**.  Every
edge batch is appended to the write-ahead log (and fsynced) before any
in-memory state changes, so the in-memory state is always a pure
function of ``(last durable snapshot, WAL records after it)`` and a
SIGKILL at any instruction recovers to exactly the state an
uninterrupted process would have reached.

Apply path per batch:

1. **journal** — the encoded batch goes into the WAL
   (:data:`~repro.stream.wal.KIND_BATCH`);
2. **mutate** — the batch folds into the canonical
   :class:`~repro.stream.delta.EdgeStore`;
3. **repair** — only the dirty frontier is re-detected: communities the
   batch touched are exploded back to singleton vertices, every
   untouched community is collapsed to one super-node, and the reduced
   graph runs through the ordinary
   :class:`~repro.core.engine.AgglomerationEngine` kernels.  Untouched
   vertices can only move if their whole community moves, and the work
   is proportional to the frontier, not the graph;
4. **degrade when needed** — the drift ladder below.

Degradation ladder (each rung recorded in
:class:`~repro.resilience.report.RecoveryReport` and on the
:class:`~repro.obs.timeline.StreamTimeline`):

* transient repair failures retry with the (optionally jittered)
  :class:`~repro.resilience.retry.RetryPolicy` backoff;
* exhausted retries, modularity drifting more than
  ``drift_threshold`` below the last full detection, or a repair
  exceeding ``repair_deadline_s`` escalate to a **full from-scratch
  re-detection** over the whole store.

Rerun decisions are themselves journaled
(:data:`~repro.stream.wal.KIND_RERUN` control records) *before* they
execute.  That is what keeps non-deterministic triggers (the wall-clock
deadline) crash-equivalent: WAL replay re-executes exactly the reruns
the original process decided, and never evaluates the deadline itself.
The drift trigger is a deterministic function of the replayed state, so
the one crash window it has — killed after deciding, before
journaling — closes with a single post-replay drift evaluation that
re-makes the identical decision.

Deterministic crash points (``wal-append``, ``apply``, ``snapshot``,
``post-snapshot``, ``wal-rerun``) consult an optional
:class:`~repro.resilience.faults.FaultPlan`; a scheduled ``sigkill``
fault is a real ``os.kill(os.getpid(), SIGKILL)``.  The kill-chaos
suite drives these through ``repro replay --kill-after``.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import AgglomerationEngine, RunContext
from repro.core.termination import TerminationCriteria
from repro.errors import ReproError, StreamStateError
from repro.graph.build import from_edges
from repro.metrics.coverage import coverage
from repro.metrics.modularity import modularity
from repro.metrics.partition import Partition
from repro.obs.timeline import StreamTimeline
from repro.resilience.faults import FaultPlan
from repro.resilience.report import RecoveryReport
from repro.resilience.retry import RetryPolicy
from repro.stream.delta import EdgeBatch, EdgeStore, decode_batch, encode_batch
from repro.stream.store import ServiceState, SnapshotStore
from repro.stream.wal import (
    KIND_BATCH,
    KIND_RERUN,
    WalRecovery,
    WriteAheadLog,
)
from repro.types import VERTEX_DTYPE
from repro.util.log import get_logger

__all__ = ["CRASH_POINTS", "StreamConfig", "BatchResult", "DetectionService"]

#: Named crash points, in apply order, for ``FaultPlan.sigkill_at``.
CRASH_POINTS = (
    "wal-append",
    "apply",
    "snapshot",
    "post-snapshot",
    "wal-rerun",
)

_log = get_logger("stream.service")


@dataclass
class StreamConfig:
    """Tuning knobs of one :class:`DetectionService`.

    ``termination`` defaults to running each (re)detection to its local
    maximum — a streaming partition should stay at full quality, not
    stop at the paper's benchmark coverage cutoff.  ``drift_threshold``
    is the modularity drop (versus the last full detection) that trips
    the full-rerun rung; ``repair_deadline_s`` the wall-clock repair
    budget that does the same (``None`` disables either trigger).
    """

    scorer: str = "modularity"
    matcher: str = "worklist"
    contractor: str = "bucket"
    termination: TerminationCriteria = field(
        default_factory=TerminationCriteria.local_maximum
    )
    seed: int = 0
    snapshot_every: int = 8
    snapshot_keep: int = 3
    drift_threshold: float | None = 0.1
    repair_deadline_s: float | None = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.25
        )
    )
    segment_max_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1")
        if self.drift_threshold is not None and self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive or None")
        if self.repair_deadline_s is not None and self.repair_deadline_s <= 0:
            raise ValueError("repair_deadline_s must be positive or None")


@dataclass(frozen=True)
class BatchResult:
    """What one :meth:`DetectionService.ingest` call did."""

    seq: int
    applied: bool
    n_vertices: int
    n_edges: int
    n_communities: int
    modularity: float
    coverage: float
    latency_s: float
    #: Degradation reason ("drift" / "deadline" / "repair-failed") when
    #: the batch escalated to a full re-detection; empty otherwise.
    rerun: str = ""
    n_unmatched_deletes: int = 0


class DetectionService:
    """Owns the durable state under ``data_dir`` (``wal/`` + ``snapshots/``).

    Usage::

        svc = DetectionService(data_dir)
        svc.open()                  # recover: snapshot + WAL tail replay
        svc.ingest(i, j, w, op)     # journal-then-apply one batch
        svc.close()                 # final snapshot, WAL released

    ``open`` is where crash recovery happens; it is safe (and cheap) on
    a fresh directory.  All mutating calls require an opened service.
    """

    def __init__(
        self,
        data_dir: str | os.PathLike,
        config: StreamConfig | None = None,
        *,
        faults: FaultPlan | None = None,
        timeline: StreamTimeline | None = None,
        report: RecoveryReport | None = None,
    ) -> None:
        self.config = config if config is not None else StreamConfig()
        self.data_dir = os.fspath(data_dir)
        self.wal = WriteAheadLog(
            os.path.join(self.data_dir, "wal"),
            segment_max_bytes=self.config.segment_max_bytes,
        )
        self.snapshots = SnapshotStore(
            os.path.join(self.data_dir, "snapshots"),
            keep=self.config.snapshot_keep,
        )
        self.faults = faults
        self.timeline = timeline if timeline is not None else StreamTimeline()
        self.report = report if report is not None else RecoveryReport()
        self._engine = AgglomerationEngine(
            self.config.scorer,
            matcher=self.config.matcher,
            contractor=self.config.contractor,
            termination=self.config.termination,
        )
        self.store = EdgeStore.empty()
        self.labels: np.ndarray | None = None
        self.ref_modularity = 0.0
        #: Last applied edge-batch sequence (exactly-once key).
        self.batch_seq = 0
        #: Last WAL record sequence folded into in-memory state.
        self.wal_seq = 0
        self._pending_reason: str | None = None
        self._visits: dict[str, int] = {}
        self._opened = False

    # ----------------------------------------------------------- properties
    @property
    def n_vertices(self) -> int:
        return self.store.n_vertices

    @property
    def n_communities(self) -> int:
        if self.labels is None or not len(self.labels):
            return 0
        return int(self.labels.max()) + 1

    @property
    def partition(self) -> Partition:
        """The current community assignment (empty before any batch)."""
        labels = (
            self.labels
            if self.labels is not None
            else np.empty(0, VERTEX_DTYPE)
        )
        return Partition(labels)

    # --------------------------------------------------------------- faults
    def _fault(self, point: str) -> None:
        if self.faults is None:
            return
        index = self._visits.get(point, 0)
        self._visits[point] = index + 1
        spec = self.faults.decide_service(point, index)
        if spec is None:
            return
        if spec.kind == "sigkill":
            # A real SIGKILL: no atexit, no flush, no destructors — the
            # process state simply stops existing, exactly like a power
            # cut at this instruction.
            os.kill(os.getpid(), signal.SIGKILL)

    # --------------------------------------------------------------- open
    def open(self) -> WalRecovery:
        """Recover durable state and make the service live.

        Loads the newest valid snapshot (quarantining invalid ones),
        repairs the WAL (truncating/quarantining torn tails), replays
        the WAL tail against the snapshot, then closes the one
        non-durable crash window with a final drift evaluation.
        Returns the WAL recovery record.
        """
        state, n_invalid = self.snapshots.load_latest()
        self.report.checkpoints_invalid += n_invalid
        wal_rec = self.wal.recover()
        self.report.wal_torn_records += wal_rec.n_torn
        if state is not None:
            self.store = state.store
            self.labels = state.labels
            self.ref_modularity = state.ref_modularity
            self.batch_seq = state.batch_seq
            self.wal_seq = state.wal_seq
            # A snapshot proves sequences up to wal_seq existed; if the
            # surviving log is empty (e.g. every record-bearing segment
            # was truncated away after this snapshot), fast-forward its
            # numbering so new appends continue above the snapshot.
            self.wal.ensure_seq_floor(self.wal_seq)

        # Materialize the tail before replaying: replay itself may
        # snapshot and truncate segments, which must not race the scan.
        tail = list(self.wal.records(start_seq=self.wal_seq + 1))
        if tail and tail[0].seq != self.wal_seq + 1:
            raise StreamStateError(
                f"recovery gap: state covers WAL seq {self.wal_seq} but "
                f"the surviving log starts at {tail[0].seq} — "
                f"{'no valid snapshot remains' if state is None else 'the valid snapshots predate the log'}"
            )
        self._opened = True
        for rec in tail:
            self.wal_seq = rec.seq
            if rec.kind == KIND_BATCH:
                batch = decode_batch(rec.payload)
                if batch.seq <= self.batch_seq:
                    continue
                self._apply_batch(batch, replaying=True)
                self.report.wal_replayed += 1
            elif rec.kind == KIND_RERUN:
                info = json.loads(rec.payload.decode("utf-8"))
                self._execute_rerun(str(info.get("reason", "journaled")))
        if self._pending_reason is not None:
            # The crash fell between deciding a (deterministic) rerun
            # and journaling it; re-make the identical decision live.
            self._escalate(self._pending_reason)
        if wal_rec.n_torn or self.report.wal_replayed:
            _log.info(
                "recovered: %d batches replayed, %d torn WAL event(s), "
                "state at batch %d / WAL %d",
                self.report.wal_replayed,
                wal_rec.n_torn,
                self.batch_seq,
                self.wal_seq,
            )
        return wal_rec

    # -------------------------------------------------------------- ingest
    def ingest(
        self,
        i: np.ndarray,
        j: np.ndarray,
        w: np.ndarray | None = None,
        op: np.ndarray | None = None,
        *,
        seq: int | None = None,
    ) -> BatchResult:
        """Journal and apply one edge batch; returns its outcome.

        ``op`` defaults to all-inserts; ``seq`` to the next batch
        sequence.  Re-delivering an already-applied sequence is a
        no-op (``applied=False``) — the exactly-once contract; a gap
        in sequences is an error.
        """
        if not self._opened:
            raise StreamStateError("service not open (call open() first)")
        i = np.asarray(i, dtype=VERTEX_DTYPE).ravel()
        if w is None:
            w = np.ones(len(i))
        if op is None:
            op = np.ones(len(i), dtype=np.int8)
        if seq is None:
            seq = self.batch_seq + 1
        if seq <= self.batch_seq:
            return BatchResult(
                seq=seq,
                applied=False,
                n_vertices=self.n_vertices,
                n_edges=self.store.n_edges,
                n_communities=self.n_communities,
                modularity=float("nan"),
                coverage=float("nan"),
                latency_s=0.0,
            )
        if seq != self.batch_seq + 1:
            raise ValueError(
                f"batch sequence gap: expected {self.batch_seq + 1}, "
                f"got {seq}"
            )
        batch = EdgeBatch(seq=seq, i=i, j=j, w=w, op=op)
        rec = self.wal.append(encode_batch(batch), kind=KIND_BATCH)
        self.wal_seq = rec.seq
        self._fault("wal-append")
        return self._apply_batch(batch, replaying=False)

    # --------------------------------------------------------------- apply
    def _apply_batch(self, batch: EdgeBatch, *, replaying: bool) -> BatchResult:
        t0 = time.perf_counter()
        stats = self.store.apply(batch)
        bootstrap = self.labels is None

        reason: str | None = None
        attempt = 0
        while True:
            try:
                self._repair(stats.touched_vertices)
                break
            except (ReproError, ValueError) as exc:
                attempt += 1
                self.report.retries += 1
                if attempt > self.config.retry.max_retries:
                    reason = "repair-failed"
                    _log.warning(
                        "incremental repair of batch %d failed after "
                        "%d attempt(s): %s",
                        batch.seq,
                        attempt,
                        exc,
                    )
                    break
                delay = self.config.retry.backoff_s(attempt, token=batch.seq)
                _log.debug(
                    "repair attempt %d of batch %d failed (%s); "
                    "retrying in %.3fs",
                    attempt,
                    batch.seq,
                    exc,
                    delay,
                )
                time.sleep(delay)
        self._fault("apply")
        self.batch_seq = batch.seq
        repair_s = time.perf_counter() - t0

        q = cov = float("nan")
        if reason is None:
            graph = self.store.as_graph()
            part = Partition(self.labels)
            q = modularity(graph, part)
            cov = coverage(graph, part)
            if bootstrap:
                self.ref_modularity = q
            elif (
                self.config.drift_threshold is not None
                and self.ref_modularity - q > self.config.drift_threshold
            ):
                reason = "drift"
            elif (
                not replaying
                and self.config.repair_deadline_s is not None
                and repair_s > self.config.repair_deadline_s
            ):
                # Wall-clock trigger: never evaluated during replay —
                # the journaled control record replays it instead.
                reason = "deadline"

        self._pending_reason = None
        if reason is not None:
            if replaying:
                # A live run journaled this decision right after the
                # batch; the control record follows in the tail and
                # will execute it.  If the crash beat the journal, the
                # post-replay evaluation in open() re-escalates.
                self._pending_reason = reason
            else:
                q, cov = self._escalate(reason)

        latency_s = time.perf_counter() - t0
        self.timeline.record_batch(
            seq=batch.seq,
            n_vertices=self.n_vertices,
            n_edges=self.store.n_edges,
            n_communities=self.n_communities,
            modularity=q,
            coverage=cov,
            latency_s=latency_s,
            rerun=reason or "",
            replayed=replaying,
        )
        if (
            batch.seq % self.config.snapshot_every == 0
            and self._pending_reason is None
        ):
            self._snapshot()
        return BatchResult(
            seq=batch.seq,
            applied=True,
            n_vertices=self.n_vertices,
            n_edges=self.store.n_edges,
            n_communities=self.n_communities,
            modularity=q,
            coverage=cov,
            latency_s=latency_s,
            rerun=reason or "",
            n_unmatched_deletes=stats.n_unmatched_deletes,
        )

    # -------------------------------------------------------------- repair
    def _repair(self, touched: np.ndarray) -> None:
        """Re-detect only the neighborhoods ``touched`` belongs to.

        Touched communities dissolve into singleton vertices; untouched
        communities ride as super-nodes whose internal edges fold into
        self-weights.  The reduced-id assignment is canonical (untouched
        communities by community id, then touched members by vertex id),
        so the repair is a deterministic function of (labels, store,
        touched) — the crash-equivalence contract rests on this.
        """
        n = self.store.n_vertices
        labels = (
            self.labels
            if self.labels is not None
            else np.empty(0, VERTEX_DTYPE)
        )
        n_old = len(labels)
        k_old = int(labels.max()) + 1 if n_old else 0
        if n > n_old:
            # New vertices start as singleton communities (dense ids
            # appended after the existing ones).
            labels = np.concatenate(
                [labels, k_old + np.arange(n - n_old, dtype=VERTEX_DTYPE)]
            )
        if not len(touched):
            self.labels = labels
            return
        k = int(labels.max()) + 1 if len(labels) else 0
        touched_comm = np.zeros(k, dtype=bool)
        touched_comm[labels[touched]] = True
        touched_v = touched_comm[labels]

        untouched_comms = np.flatnonzero(~touched_comm)
        n_untouched = len(untouched_comms)
        comm_to_reduced = np.full(k, -1, dtype=np.int64)
        comm_to_reduced[untouched_comms] = np.arange(n_untouched)
        reduced = np.empty(n, dtype=np.int64)
        reduced[~touched_v] = comm_to_reduced[labels[~touched_v]]
        frontier = np.flatnonzero(touched_v)
        reduced[frontier] = n_untouched + np.arange(len(frontier))

        graph = from_edges(
            reduced[self.store.lo],
            reduced[self.store.hi],
            self.store.w,
            n_vertices=n_untouched + len(frontier),
        )
        result = self._engine.run(
            graph, RunContext.create(seed=self.config.seed)
        )
        self.labels = Partition.from_labels(
            result.partition.labels[reduced]
        ).labels

    # ------------------------------------------------------------- degrade
    def _escalate(self, reason: str) -> tuple[float, float]:
        """Journal, then execute, one full-rerun rung."""
        payload = json.dumps(
            {"reason": reason, "batch_seq": self.batch_seq}
        ).encode("utf-8")
        rec = self.wal.append(payload, kind=KIND_RERUN)
        self.wal_seq = rec.seq
        self._fault("wal-rerun")
        return self._execute_rerun(reason)

    def _execute_rerun(self, reason: str) -> tuple[float, float]:
        """Full from-scratch re-detection over the whole store."""
        graph = self.store.as_graph()
        result = self._engine.run(
            graph, RunContext.create(seed=self.config.seed)
        )
        self.labels = result.partition.labels
        q = modularity(graph, result.partition)
        cov = coverage(graph, result.partition)
        self.ref_modularity = q
        self.report.stream_reruns += 1
        self.report.ladder.append(f"full-rerun({reason}@batch{self.batch_seq})")
        self._pending_reason = None
        _log.info(
            "full rerun (%s) at batch %d: %d communities, modularity %.4f",
            reason,
            self.batch_seq,
            result.n_communities,
            q,
        )
        return q, cov

    # ------------------------------------------------------------ snapshot
    def _snapshot(self) -> None:
        assert self.labels is not None
        self.snapshots.save(
            ServiceState(
                wal_seq=self.wal_seq,
                batch_seq=self.batch_seq,
                store=self.store,
                labels=self.labels,
                ref_modularity=self.ref_modularity,
            )
        )
        self.report.checkpoints_written += 1
        self._fault("snapshot")
        self.wal.truncate_upto(self.wal_seq)
        self._fault("post-snapshot")

    # -------------------------------------------------------------- verify
    def verify(self) -> dict:
        """Structural self-check; returns ``{"ok": bool, "checks": {...}}``.

        Verifies the canonical store invariants, label density, label /
        store consistency, a full WAL re-scan (every surviving frame
        must still pass its CRCs), and quality finiteness.  This is the
        ``repro replay --verify`` gate.
        """
        checks: dict[str, bool] = {}
        try:
            self.store.validate()
            checks["store_canonical"] = True
        except ValueError:
            checks["store_canonical"] = False
        try:
            part = self.partition
            checks["labels_dense"] = True
            checks["labels_cover_store"] = (
                part.n_vertices == self.store.n_vertices
            )
        except ValueError:
            checks["labels_dense"] = False
            checks["labels_cover_store"] = False
        try:
            n_wal = sum(1 for _ in self.wal.records())
            checks["wal_integrity"] = True
            checks["wal_records"] = True if n_wal >= 0 else False
        except ReproError:
            checks["wal_integrity"] = False
        if checks.get("labels_cover_store") and self.store.n_edges:
            graph = self.store.as_graph()
            q = modularity(graph, self.partition)
            checks["modularity_finite"] = bool(np.isfinite(q))
        return {"ok": all(checks.values()), "checks": checks}

    # --------------------------------------------------------------- close
    def close(self) -> None:
        """Snapshot (if there is unsnapshotted state) and release the WAL."""
        if self._opened and self.labels is not None:
            on_disk = self.snapshots.seqs_on_disk()
            if self.wal_seq > (on_disk[-1] if on_disk else 0):
                self._snapshot()
        self.wal.close()
        self._opened = False

    def __enter__(self) -> "DetectionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
