"""Edge-delta batches and the canonical dynamic edge store.

A streaming update is an :class:`EdgeBatch`: parallel arrays of
endpoints, positive weights, and an op sign (+1 insert, -1 delete).
Batches serialize to a self-describing ``.npz`` payload
(:func:`encode_batch` / :func:`decode_batch`) — the bytes the
write-ahead log journals — and apply to an :class:`EdgeStore`, the
canonical weighted multiset of undirected edges the service's graph is
built from.

The store is *canonical* in the strict sense the crash-equivalence
contract needs: edges are kept as ``(lo, hi, w)`` with ``lo <= hi``
(loops included), sorted by key, one row per endpoint pair.  Applying
the same batch sequence to the same starting store therefore produces
bit-identical arrays no matter how the sequence was split across
process lifetimes — the property WAL replay leans on.

Delete semantics are *weighted*: a delete row subtracts its weight from
the pair's accumulated weight; the pair disappears when its weight
reaches zero.  Deleting more weight than exists clamps at zero and is
counted (``n_unmatched_deletes``) rather than raised — a stream
replayed against a snapshot may legitimately re-delete edges the
snapshot already dropped is *not* the case here (replay is exactly-once),
but upstream producers do emit stale deletes and a robust service
absorbs them visibly instead of dying.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.errors import WalError
from repro.graph.build import from_edges
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "BATCH_SCHEMA_VERSION",
    "OP_INSERT",
    "OP_DELETE",
    "WEIGHT_EPS",
    "EdgeBatch",
    "ApplyStats",
    "EdgeStore",
    "encode_batch",
    "decode_batch",
]

#: Version of the serialized batch payload schema.
BATCH_SCHEMA_VERSION = 1

OP_INSERT = 1
OP_DELETE = -1

#: Accumulated weights at or below this are treated as "edge gone".
WEIGHT_EPS = 1e-9


@dataclass(frozen=True)
class EdgeBatch:
    """One atomic unit of graph change.

    ``seq`` is the batch's position in the stream (1-based, contiguous);
    it is the exactly-once key — a service that has applied batch ``k``
    skips any re-delivery of batches ``<= k``.  ``w`` carries positive
    weights for inserts *and* deletes; the sign lives in ``op``.
    """

    seq: int
    i: np.ndarray
    j: np.ndarray
    w: np.ndarray
    op: np.ndarray

    def __post_init__(self) -> None:
        i = np.asarray(self.i, dtype=VERTEX_DTYPE).ravel()
        j = np.asarray(self.j, dtype=VERTEX_DTYPE).ravel()
        w = np.asarray(self.w, dtype=WEIGHT_DTYPE).ravel()
        op = np.asarray(self.op, dtype=np.int8).ravel()
        if not (len(i) == len(j) == len(w) == len(op)):
            raise ValueError("batch arrays must have equal length")
        if self.seq < 1:
            raise ValueError("batch seq must be >= 1")
        if len(i):
            if int(i.min()) < 0 or int(j.min()) < 0:
                raise ValueError("negative vertex id in batch")
            if not np.all(np.isfinite(w)) or float(w.min()) <= 0:
                raise ValueError("batch weights must be positive and finite")
            if not np.all((op == OP_INSERT) | (op == OP_DELETE)):
                raise ValueError("batch ops must be +1 (insert) or -1 (delete)")
        object.__setattr__(self, "i", i)
        object.__setattr__(self, "j", j)
        object.__setattr__(self, "w", w)
        object.__setattr__(self, "op", op)

    @classmethod
    def inserts(
        cls,
        seq: int,
        i: np.ndarray,
        j: np.ndarray,
        w: np.ndarray | None = None,
    ) -> "EdgeBatch":
        """A pure-insert batch (unit weights when ``w`` is omitted)."""
        i = np.asarray(i, dtype=VERTEX_DTYPE).ravel()
        if w is None:
            w = np.ones(len(i), dtype=WEIGHT_DTYPE)
        return cls(
            seq=seq, i=i, j=j, w=w, op=np.full(len(i), OP_INSERT, np.int8)
        )

    @property
    def n_edges(self) -> int:
        return len(self.i)

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique vertex ids this batch mentions."""
        if not len(self.i):
            return np.empty(0, dtype=VERTEX_DTYPE)
        return np.unique(np.concatenate([self.i, self.j]))


def encode_batch(batch: EdgeBatch) -> bytes:
    """Serialize a batch to the bytes the WAL journals."""
    buf = io.BytesIO()
    np.savez_compressed(
        buf,
        schema=np.int64(BATCH_SCHEMA_VERSION),
        seq=np.int64(batch.seq),
        i=batch.i,
        j=batch.j,
        w=batch.w,
        op=batch.op,
    )
    return buf.getvalue()


def decode_batch(data: bytes) -> EdgeBatch:
    """Inverse of :func:`encode_batch`.

    Raises :class:`~repro.errors.WalError` on a malformed payload: the
    WAL frame's CRC already vouched for the bytes, so a decode failure
    here means a schema mismatch or writer bug, not disk corruption —
    the log as recorded cannot be applied.
    """
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as z:
            schema = int(z["schema"])
            if schema != BATCH_SCHEMA_VERSION:
                raise WalError(
                    f"batch payload schema {schema} unsupported "
                    f"(expected {BATCH_SCHEMA_VERSION})"
                )
            return EdgeBatch(
                seq=int(z["seq"]), i=z["i"], j=z["j"], w=z["w"], op=z["op"]
            )
    except WalError:
        raise
    except Exception as exc:
        raise WalError(f"undecodable batch payload: {exc}") from exc


@dataclass(frozen=True)
class ApplyStats:
    """What one batch did to the store."""

    n_insert_rows: int
    n_delete_rows: int
    #: Endpoint pairs whose accumulated weight a delete pushed below
    #: zero (clamped; the over-deleted weight is dropped).
    n_unmatched_deletes: int
    #: Sorted unique vertex ids the batch mentioned — the dirty frontier
    #: the service repairs.
    touched_vertices: np.ndarray = field(repr=False)


class EdgeStore:
    """Canonical weighted multiset of undirected edges (loops included).

    Invariants (checked by :meth:`validate`): ``0 <= lo <= hi <
    n_vertices``, keys ``(lo, hi)`` strictly increasing, weights
    positive and finite.  ``n_vertices`` grows monotonically — a vertex
    id, once seen, keeps its meaning forever, which is what lets labels
    survive across batches.
    """

    def __init__(
        self,
        n_vertices: int,
        lo: np.ndarray,
        hi: np.ndarray,
        w: np.ndarray,
    ) -> None:
        self.n_vertices = int(n_vertices)
        self.lo = np.asarray(lo, dtype=VERTEX_DTYPE).ravel()
        self.hi = np.asarray(hi, dtype=VERTEX_DTYPE).ravel()
        self.w = np.asarray(w, dtype=WEIGHT_DTYPE).ravel()

    @classmethod
    def empty(cls) -> "EdgeStore":
        return cls(
            0,
            np.empty(0, VERTEX_DTYPE),
            np.empty(0, VERTEX_DTYPE),
            np.empty(0, WEIGHT_DTYPE),
        )

    # ------------------------------------------------------------ queries
    @property
    def n_edges(self) -> int:
        return len(self.lo)

    def total_weight(self) -> float:
        return float(self.w.sum()) if len(self.w) else 0.0

    def validate(self) -> None:
        """Raise ``ValueError`` when a canonical-form invariant breaks."""
        if not (len(self.lo) == len(self.hi) == len(self.w)):
            raise ValueError("edge arrays must have equal length")
        if self.n_vertices < 0:
            raise ValueError("negative vertex count")
        if not len(self.lo):
            return
        if int(self.lo.min()) < 0:
            raise ValueError("negative vertex id")
        if np.any(self.lo > self.hi):
            raise ValueError("edges must satisfy lo <= hi")
        if int(self.hi.max()) >= self.n_vertices:
            raise ValueError("endpoint beyond n_vertices")
        if not np.all(np.isfinite(self.w)) or float(self.w.min()) <= 0:
            raise ValueError("edge weights must be positive and finite")
        key = self.lo.astype(np.int64) * self.n_vertices + self.hi
        if np.any(np.diff(key) <= 0):
            raise ValueError("edge keys must be strictly increasing")

    # -------------------------------------------------------------- apply
    def apply(self, batch: EdgeBatch) -> ApplyStats:
        """Fold one batch in; returns the apply statistics.

        Deterministic: the resulting arrays are a pure function of the
        prior canonical arrays and the batch.  O(E + B) with one sort
        over the combined rows.
        """
        touched = batch.touched_vertices()
        n_ins = int(np.count_nonzero(batch.op == OP_INSERT))
        n_del = batch.n_edges - n_ins
        if not batch.n_edges:
            return ApplyStats(0, 0, 0, touched)

        n_new = max(
            self.n_vertices,
            int(max(int(batch.i.max()), int(batch.j.max()))) + 1,
        )
        lo_b = np.minimum(batch.i, batch.j).astype(np.int64)
        hi_b = np.maximum(batch.i, batch.j).astype(np.int64)
        signed = batch.w * batch.op.astype(WEIGHT_DTYPE)

        keys = np.concatenate(
            [
                self.lo.astype(np.int64) * n_new + self.hi,
                lo_b * n_new + hi_b,
            ]
        )
        vals = np.concatenate([self.w, signed])
        uk, inv = np.unique(keys, return_inverse=True)
        acc = np.bincount(inv, weights=vals, minlength=len(uk))
        n_unmatched = int(np.count_nonzero(acc < -WEIGHT_EPS))
        keep = acc > WEIGHT_EPS
        kept = uk[keep]
        self.lo = (kept // n_new).astype(VERTEX_DTYPE)
        self.hi = (kept % n_new).astype(VERTEX_DTYPE)
        self.w = acc[keep].astype(WEIGHT_DTYPE)
        self.n_vertices = n_new
        return ApplyStats(n_ins, n_del, n_unmatched, touched)

    # -------------------------------------------------------- conversions
    def as_graph(self) -> CommunityGraph:
        """Materialize the current graph (loops become self weights)."""
        return from_edges(self.lo, self.hi, self.w, n_vertices=self.n_vertices)

    def copy(self) -> "EdgeStore":
        return EdgeStore(
            self.n_vertices, self.lo.copy(), self.hi.copy(), self.w.copy()
        )

    def equals(self, other: "EdgeStore") -> bool:
        """Bit-level equality of the canonical representation."""
        return (
            self.n_vertices == other.n_vertices
            and np.array_equal(self.lo, other.lo)
            and np.array_equal(self.hi, other.hi)
            and np.array_equal(self.w, other.w)
        )
