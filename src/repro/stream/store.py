"""Durable snapshots of the streaming service's state.

A snapshot is the *base* of recovery: the newest valid snapshot is
loaded, then the WAL tail (records with sequence numbers greater than
the snapshot's ``wal_seq``) is replayed on top.  One snapshot is one
self-contained ``.npz`` file named by the WAL sequence it covers, so
the directory is a history and recovery picks the newest file that
validates.

The durability rules mirror :mod:`repro.resilience.checkpoint` (this
store is its seq-keyed sibling): atomic tmp+fsync+rename writes,
schema-versioned payloads, full validation on reload — the edge arrays
are re-checked against the canonical-form invariants and the labels
re-pushed through :class:`~repro.metrics.partition.Partition`'s
density check — and invalid files are *quarantined* (renamed
``*.corrupt`` via the shared
:func:`~repro.resilience.checkpoint.quarantine_file`) so known-bad
bytes are validated at most once.  An empty or fully corrupt directory
recovers as "replay the WAL from sequence one"; whether that is
possible is the service's call (:class:`~repro.errors.StreamStateError`
when it is not).
"""

from __future__ import annotations

import os
import re
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.metrics.partition import Partition
from repro.resilience.checkpoint import quarantine_file
from repro.stream.delta import EdgeStore
from repro.types import VERTEX_DTYPE
from repro.util.atomicio import atomic_write
from repro.util.log import get_logger

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "ServiceState",
    "SnapshotStore",
]

#: Version of the on-disk snapshot schema.
SNAPSHOT_SCHEMA_VERSION = 1

_FILE_RE = re.compile(r"^snap_(\d{12})\.npz$")

_log = get_logger("stream.store")


@dataclass
class ServiceState:
    """Everything the service needs to resume at a WAL position.

    Attributes
    ----------
    wal_seq:
        Last WAL record sequence folded into this state; recovery
        replays strictly greater sequences.
    batch_seq:
        Last *edge-batch* sequence applied (the exactly-once key the
        replay harness dedups on; WAL sequences also count control
        records, so the two run apart).
    store:
        The canonical edge multiset.
    labels:
        Dense community labels over ``store.n_vertices`` vertices.
    ref_modularity:
        The drift baseline — modularity measured at the last full
        detection (bootstrap or rerun rung).
    """

    wal_seq: int
    batch_seq: int
    store: EdgeStore
    labels: np.ndarray
    ref_modularity: float = 0.0

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=VERTEX_DTYPE).ravel()


class SnapshotStore:
    """Reads and writes service snapshots in one directory.

    Parameters
    ----------
    directory:
        Snapshot directory; created if missing.
    keep:
        Newest snapshots to retain after each save.  ``None`` keeps
        everything; the default keeps a fallback behind the newest.
    """

    def __init__(
        self, directory: str | os.PathLike, *, keep: int | None = 3
    ) -> None:
        if keep is not None and keep < 1:
            raise ValueError("keep must be at least 1 (or None)")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- paths
    def path_for(self, wal_seq: int) -> Path:
        return self.directory / f"snap_{wal_seq:012d}.npz"

    def seqs_on_disk(self) -> list[int]:
        """Snapshot WAL sequences present (sorted ascending)."""
        out = []
        for name in os.listdir(self.directory):
            m = _FILE_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    # ----------------------------------------------------------------- save
    def save(self, state: ServiceState) -> Path:
        """Atomically persist one snapshot; returns its path."""
        if state.batch_seq > state.wal_seq:
            raise ValueError(
                f"batch_seq {state.batch_seq} > wal_seq {state.wal_seq}"
            )
        if len(state.labels) != state.store.n_vertices:
            raise ValueError(
                f"labels cover {len(state.labels)} vertices but the store "
                f"has {state.store.n_vertices}"
            )
        final = self.path_for(state.wal_seq)
        with atomic_write(final, mode="wb") as fh:
            np.savez_compressed(
                fh,
                schema=np.int64(SNAPSHOT_SCHEMA_VERSION),
                wal_seq=np.int64(state.wal_seq),
                batch_seq=np.int64(state.batch_seq),
                n_vertices=np.int64(state.store.n_vertices),
                lo=state.store.lo,
                hi=state.store.hi,
                w=state.store.w,
                labels=state.labels,
                ref_modularity=np.float64(state.ref_modularity),
            )
        self._prune()
        return final

    def _prune(self) -> None:
        if self.keep is None:
            return
        for seq in self.seqs_on_disk()[: -self.keep]:
            try:
                self.path_for(seq).unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # ----------------------------------------------------------------- load
    def load_seq(self, wal_seq: int) -> ServiceState:
        """Load and validate one snapshot; raises :class:`CheckpointError`."""
        path = self.path_for(wal_seq)
        try:
            with np.load(path, allow_pickle=False) as data:
                return self._decode(path, data)
        except CheckpointError:
            raise
        except (OSError, zipfile.BadZipFile, KeyError, ValueError) as exc:
            raise CheckpointError(
                f"{path}: unreadable or truncated snapshot: {exc}"
            ) from exc

    def _decode(self, path: Path, data) -> ServiceState:
        schema = int(data["schema"])
        if schema != SNAPSHOT_SCHEMA_VERSION:
            raise CheckpointError(
                f"{path}: snapshot schema {schema} unsupported "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        store = EdgeStore(
            int(data["n_vertices"]), data["lo"], data["hi"], data["w"]
        )
        try:
            store.validate()
        except ValueError as exc:
            raise CheckpointError(
                f"{path}: snapshotted edge store fails validation: {exc}"
            ) from exc
        labels = np.asarray(data["labels"], dtype=VERTEX_DTYPE)
        if len(labels) != store.n_vertices:
            raise CheckpointError(
                f"{path}: labels cover {len(labels)} vertices but the "
                f"store has {store.n_vertices}"
            )
        try:
            Partition(labels)  # density/negativity check
        except ValueError as exc:
            raise CheckpointError(
                f"{path}: snapshotted labels fail validation: {exc}"
            ) from exc
        wal_seq = int(data["wal_seq"])
        batch_seq = int(data["batch_seq"])
        if not 0 <= batch_seq <= wal_seq:
            raise CheckpointError(
                f"{path}: batch_seq {batch_seq} inconsistent with "
                f"wal_seq {wal_seq}"
            )
        ref = float(data["ref_modularity"])
        if not np.isfinite(ref):
            raise CheckpointError(f"{path}: non-finite drift baseline")
        return ServiceState(
            wal_seq=wal_seq,
            batch_seq=batch_seq,
            store=store,
            labels=labels,
            ref_modularity=ref,
        )

    def load_latest(self) -> tuple[ServiceState | None, int]:
        """The newest valid snapshot, plus the count of invalid files.

        Invalid files are quarantined (``*.corrupt``) and logged once,
        exactly like
        :meth:`repro.resilience.checkpoint.CheckpointManager.load_latest`.
        """
        n_invalid = 0
        quarantined: list[str] = []
        state: ServiceState | None = None
        for seq in reversed(self.seqs_on_disk()):
            try:
                state = self.load_seq(seq)
                break
            except CheckpointError as exc:
                n_invalid += 1
                try:
                    quarantined.append(str(quarantine_file(self.path_for(seq))))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
                _log.debug("invalid snapshot: %s", exc)
        if quarantined:
            _log.warning(
                "quarantined %d invalid snapshot file(s): %s",
                len(quarantined),
                ", ".join(quarantined),
            )
        return state, n_invalid
