"""Append-only, CRC-checksummed, segment-rotated write-ahead log.

The streaming service journals every edge batch (and every degradation
decision) here *before* mutating any in-memory state, so a crash at any
instruction loses at most work that can be recomputed from the log.

On-disk layout (one directory per log)::

    seg_00000001.wal        sealed segment (immutable)
    seg_00000002.wal.open   active segment (append target, at most one)
    manifest.json           sealed-segment index, atomically rewritten

Each segment starts with a 16-byte header — magic ``WSEG``, u32
version, u64 *base sequence* (the sequence number of the segment's
first record, fixed at creation) — followed by records.  The base
sequence is what keeps numbering monotone across truncation: even a
log whose every record has been folded into a snapshot and dropped
still knows, from its empty active segment alone, where the next
sequence continues.  A record is a 28-byte frame header —
magic ``WREC``, u64 sequence number, u8 kind, 3 pad bytes, u32 payload
length, u32 payload CRC32, u32 CRC32 *of the first 24 header bytes* —
followed by the payload.  The double CRC means a torn or bit-flipped
tail is detected before the payload length is ever trusted.

Sequence numbers are monotone and contiguous across the whole log
(segments included), which gives replay its exactly-once anchor: a
snapshot records the last sequence folded into it and recovery replays
strictly greater sequences only.

Recovery (:meth:`WriteAheadLog.recover`) scans segments in index order
and stops at the first frame that fails any check.  The good prefix is
kept; the torn remainder of that segment is quarantined to a sidecar
``.torn`` file and the segment truncated to the last good frame; any
*later* segments are quarantined whole (``*.corrupt`` — same rename
rule as checkpoint quarantine).  Torn tails are expected crash debris
and never an error.  What *is* an error
(:class:`~repro.errors.WalError`) is structural impossibility: sequence
numbers running backwards, two active segments, an unsupported segment
version — signs the directory holds something other than one log's
history.

Sealing is atomic: the active file is ``os.replace``-d to its sealed
name and the manifest rewritten through
:func:`~repro.util.atomicio.atomic_write_text`, so readers see either
the old or the new manifest, never a torn one.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import WalError
from repro.resilience.checkpoint import quarantine_file
from repro.util.atomicio import atomic_write_bytes, atomic_write_text
from repro.util.log import get_logger

__all__ = [
    "WAL_VERSION",
    "KIND_BATCH",
    "KIND_RERUN",
    "WalRecord",
    "WalRecovery",
    "WriteAheadLog",
]

#: On-disk segment format version.
WAL_VERSION = 1

#: Record kinds: an edge batch to apply, or a journaled control decision
#: (full-rerun rung) replay must reproduce.
KIND_BATCH = 1
KIND_RERUN = 2
_KNOWN_KINDS = (KIND_BATCH, KIND_RERUN)

_RECORD_MAGIC = b"WREC"
_SEGMENT_MAGIC = b"WSEG"
#: magic, seq, kind, pad*3, payload_len, payload_crc32, header_crc32
_HEADER = struct.Struct("<4sQB3xIII")
#: magic, version, base sequence of the segment's first record
_SEG_HEADER = struct.Struct("<4sIQ")

_log = get_logger("stream.wal")


@dataclass(frozen=True)
class WalRecord:
    """One journaled record: sequence number, kind, opaque payload."""

    seq: int
    kind: int
    payload: bytes = field(repr=False)


@dataclass
class WalRecovery:
    """What one :meth:`WriteAheadLog.recover` pass found and repaired."""

    #: First and last surviving sequence numbers (0 when the log is empty).
    first_seq: int = 0
    last_seq: int = 0
    n_records: int = 0
    #: Truncation/quarantine events (a torn tail counts once; each whole
    #: segment quarantined after it counts once more).
    n_torn: int = 0
    truncated_bytes: int = 0
    quarantined: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.n_torn == 0 and not self.quarantined


@dataclass
class _SegmentMeta:
    index: int
    path: Path
    sealed: bool
    base_seq: int = 1
    first_seq: int = 0
    last_seq: int = 0
    n_records: int = 0


def _scan_segment_bytes(
    data: bytes, expected: int | None
) -> tuple[int, list[WalRecord], int, str | None]:
    """Parse frames from raw segment bytes.

    Returns ``(base_seq, records, good_end_offset, torn_reason)``;
    ``torn_reason=None`` means the segment parsed to its last byte.
    Raises :class:`WalError` on a sequence regression (``seq`` or a
    segment base running *backwards* is structural corruption, not a
    torn tail).
    """
    if len(data) < _SEG_HEADER.size:
        return 0, [], 0, "short segment header"
    magic, version, base_seq = _SEG_HEADER.unpack_from(data, 0)
    if magic != _SEGMENT_MAGIC:
        return 0, [], 0, "bad segment magic"
    if version != WAL_VERSION:
        raise WalError(
            f"unsupported WAL segment version {version} "
            f"(expected {WAL_VERSION})"
        )
    if expected is not None:
        if base_seq < expected:
            raise WalError(
                f"WAL sequence regression: segment base {base_seq} "
                f"after record {expected - 1}"
            )
        if base_seq > expected:
            return base_seq, [], 0, (
                f"segment base gap: expected {expected}, found {base_seq}"
            )
    else:
        expected = base_seq
    records: list[WalRecord] = []
    pos = _SEG_HEADER.size
    while pos < len(data):
        if pos + _HEADER.size > len(data):
            return base_seq, records, pos, "short frame header"
        header = data[pos : pos + _HEADER.size]
        rmagic, seq, kind, plen, pcrc, hcrc = _HEADER.unpack(header)
        if rmagic != _RECORD_MAGIC:
            return base_seq, records, pos, "bad frame magic"
        if zlib.crc32(header[:24]) != hcrc:
            return base_seq, records, pos, "frame header CRC mismatch"
        if kind not in _KNOWN_KINDS:
            return base_seq, records, pos, f"unknown record kind {kind}"
        end = pos + _HEADER.size + plen
        if end > len(data):
            return base_seq, records, pos, "short payload"
        payload = data[pos + _HEADER.size : end]
        if zlib.crc32(payload) != pcrc:
            return base_seq, records, pos, "payload CRC mismatch"
        if seq < expected:
            raise WalError(
                f"WAL sequence regression: record {seq} after "
                f"{expected - 1}"
            )
        if seq > expected:
            return base_seq, records, pos, (
                f"sequence gap: expected {expected}, found {seq}"
            )
        records.append(WalRecord(seq=seq, kind=kind, payload=payload))
        expected = seq + 1
        pos = end
    return base_seq, records, pos, None


class WriteAheadLog:
    """One directory of WAL segments; call :meth:`recover` before use."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        segment_max_bytes: int = 1 << 20,
    ) -> None:
        if segment_max_bytes < 4096:
            raise ValueError("segment_max_bytes must be at least 4096")
        self.directory = Path(directory)
        self.segment_max_bytes = int(segment_max_bytes)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise WalError(f"cannot create WAL directory: {exc}") from exc
        self._fh = None
        self._next_seq = 1
        self._sealed: list[_SegmentMeta] = []
        self._active: _SegmentMeta | None = None
        #: Outcome of the most recent :meth:`recover` (``None`` before).
        self.last_recovery: WalRecovery | None = None

    # --------------------------------------------------------------- paths
    def _sealed_path(self, index: int) -> Path:
        return self.directory / f"seg_{index:08d}.wal"

    def _open_path(self, index: int) -> Path:
        return self.directory / f"seg_{index:08d}.wal.open"

    def _segments_on_disk(self) -> list[_SegmentMeta]:
        out: list[_SegmentMeta] = []
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".wal"):
                stem = name[: -len(".wal")]
                sealed = True
            elif name.endswith(".wal.open"):
                stem = name[: -len(".wal.open")]
                sealed = False
            else:
                continue
            if not (stem.startswith("seg_") and stem[4:].isdigit()):
                continue
            out.append(
                _SegmentMeta(
                    index=int(stem[4:]),
                    path=self.directory / name,
                    sealed=sealed,
                )
            )
        out.sort(key=lambda m: m.index)
        return out

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._next_seq - 1

    @property
    def next_seq(self) -> int:
        return self._next_seq

    # ------------------------------------------------------------- recover
    def recover(self) -> WalRecovery:
        """Scan, repair, and open the log for appending.

        Idempotent; a clean log recovers to itself.  See the module
        docstring for the truncate/quarantine rules.
        """
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._sealed = []
        self._active = None
        rec = WalRecovery()
        segs = self._segments_on_disk()
        opens = [m for m in segs if not m.sealed]
        if len(opens) > 1:
            raise WalError(
                f"{self.directory}: {len(opens)} active segments "
                "(at most one .open file is legal)"
            )
        if opens and opens[0] is not segs[-1]:
            raise WalError(
                f"{opens[0].path}: active segment is not the newest "
                "(sealed segments follow it)"
            )

        expected: int | None = None
        torn_at: int | None = None
        torn_salvaged = False
        for k, meta in enumerate(segs):
            data = meta.path.read_bytes()
            base_seq, records, good_end, reason = _scan_segment_bytes(
                data, expected
            )
            meta.base_seq = base_seq if base_seq else meta.base_seq
            if records:
                meta.first_seq = records[0].seq
                meta.last_seq = records[-1].seq
                meta.n_records = len(records)
                if rec.first_seq == 0:
                    rec.first_seq = records[0].seq
                rec.last_seq = records[-1].seq
                rec.n_records += len(records)
                expected = records[-1].seq + 1
            elif reason is None:
                # Healthy but empty segment: its base still pins the
                # next sequence number.
                expected = base_seq
            if reason is not None:
                rec.n_torn += 1
                if good_end > 0:
                    # Salvage the good prefix: quarantine the torn bytes
                    # to a sidecar, then cut the segment at the last
                    # good frame.
                    tail = data[good_end:]
                    torn_path = atomic_write_bytes(
                        meta.path.with_name(meta.path.name + ".torn"), tail
                    )
                    rec.quarantined.append(str(torn_path))
                    rec.truncated_bytes += len(tail)
                    with open(meta.path, "r+b") as fh:
                        fh.truncate(good_end)
                        fh.flush()
                        os.fsync(fh.fileno())
                    torn_salvaged = True
                    _log.debug(
                        "truncated %s at byte %d (%s)",
                        meta.path,
                        good_end,
                        reason,
                    )
                else:
                    # Nothing salvageable in this segment.
                    qp = quarantine_file(meta.path)
                    rec.quarantined.append(str(qp))
                    rec.truncated_bytes += len(data)
                torn_at = k
                break

        if torn_at is not None:
            # Everything after the first torn frame is untrustworthy —
            # it was written after the bytes we just discarded.
            for meta in segs[torn_at + 1 :]:
                qp = quarantine_file(meta.path)
                rec.quarantined.append(str(qp))
                rec.n_torn += 1
            segs = segs[: torn_at + 1] if torn_salvaged else segs[:torn_at]

        self._sealed = [m for m in segs if m.sealed]
        if segs:
            last = segs[-1]
            # Records are contiguous from the base, so base + count is
            # the next sequence — correct even for an empty active
            # segment left behind by snapshot truncation.
            self._next_seq = last.base_seq + last.n_records
        else:
            self._next_seq = 1

        # Reopen (or create) the active segment.
        tail_open = [m for m in segs if not m.sealed]
        if tail_open:
            self._active = tail_open[0]
            self._fh = open(self._active.path, "ab")
        else:
            self._new_active_segment(segs[-1].index + 1 if segs else 1)
        self._write_manifest()
        if not rec.clean:
            _log.warning(
                "WAL recovery repaired %d torn event(s), quarantined: %s",
                rec.n_torn,
                ", ".join(rec.quarantined),
            )
        self.last_recovery = rec
        return rec

    def _new_active_segment(self, index: int) -> None:
        path = self._open_path(index)
        fh = open(path, "wb")
        fh.write(_SEG_HEADER.pack(_SEGMENT_MAGIC, WAL_VERSION, self._next_seq))
        fh.flush()
        os.fsync(fh.fileno())
        self._fh = fh
        self._active = _SegmentMeta(
            index=index, path=path, sealed=False, base_seq=self._next_seq
        )

    def _write_manifest(self) -> None:
        import json

        atomic_write_text(
            self.directory / "manifest.json",
            json.dumps(
                {
                    "format": "repro-wal-manifest",
                    "version": WAL_VERSION,
                    "sealed": [
                        {
                            "name": m.path.name,
                            "first_seq": m.first_seq,
                            "last_seq": m.last_seq,
                            "n_records": m.n_records,
                        }
                        for m in self._sealed
                    ],
                },
                indent=2,
            )
            + "\n",
        )

    def ensure_seq_floor(self, seq: int) -> None:
        """Guarantee future appends get sequence numbers above ``seq``.

        Used after recovery when a durable snapshot proves sequences up
        to ``seq`` once existed: an *empty* log (e.g. its directory was
        lost while snapshots survived) is fast-forwarded by recreating
        the active segment with a higher base.  A log that still holds
        records at or below the floor is left alone — the service's
        tail-gap check decides whether that history is consistent.
        """
        if self._fh is None:
            raise WalError("ensure_seq_floor on a closed/unrecovered log")
        assert self._active is not None
        if self._next_seq > seq:
            return
        if self._sealed or self._active.n_records:
            return
        index = self._active.index
        self._fh.close()
        self._fh = None
        self._active.path.unlink()
        self._next_seq = seq + 1
        self._new_active_segment(index)

    # -------------------------------------------------------------- append
    def append(self, payload: bytes, *, kind: int = KIND_BATCH) -> WalRecord:
        """Durably journal one record; returns it with its sequence.

        The frame is flushed and fsynced before this returns — the
        journal-before-mutate contract of the service depends on it.
        """
        if self._fh is None:
            raise WalError(
                "append on a closed/unrecovered log (call recover() first)"
            )
        if kind not in _KNOWN_KINDS:
            raise ValueError(f"unknown record kind {kind}")
        assert self._active is not None
        if (
            self._active.n_records > 0
            and self._fh.tell() >= self.segment_max_bytes
        ):
            self._rotate()
        seq = self._next_seq
        header = _HEADER.pack(
            _RECORD_MAGIC, seq, kind, len(payload), zlib.crc32(payload), 0
        )
        header = header[:24] + struct.pack("<I", zlib.crc32(header[:24]))
        self._fh.write(header + payload)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._next_seq = seq + 1
        if self._active.n_records == 0:
            self._active.first_seq = seq
        self._active.last_seq = seq
        self._active.n_records += 1
        return WalRecord(seq=seq, kind=kind, payload=payload)

    def _rotate(self) -> None:
        assert self._active is not None and self._fh is not None
        sealed = self._seal_active()
        self._new_active_segment(sealed.index + 1)
        self._write_manifest()

    def _seal_active(self) -> _SegmentMeta:
        """Atomically promote the active segment to sealed."""
        assert self._active is not None and self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        meta = self._active
        sealed_path = self._sealed_path(meta.index)
        os.replace(meta.path, sealed_path)
        meta.path = sealed_path
        meta.sealed = True
        self._sealed.append(meta)
        self._active = None
        return meta

    def seal(self) -> None:
        """Seal the active segment (if it holds records) and open a new one."""
        if self._fh is None:
            raise WalError("seal on a closed/unrecovered log")
        assert self._active is not None
        if self._active.n_records == 0:
            return
        self._rotate()

    # ---------------------------------------------------------------- read
    def records(self, *, start_seq: int = 1) -> Iterator[WalRecord]:
        """Iterate durable records with ``seq >= start_seq`` in order.

        Requires a recovered log (so every surviving frame is known
        good); hitting a bad frame here raises :class:`WalError`
        because post-recovery corruption means concurrent mutation.
        """
        if self._fh is not None:
            self._fh.flush()
        segs = list(self._sealed)
        if self._active is not None:
            segs = segs + [self._active]
        expected: int | None = None
        for meta in segs:
            if not meta.path.exists():
                continue
            _base, records, _good_end, reason = _scan_segment_bytes(
                meta.path.read_bytes(), expected
            )
            if reason is not None:
                raise WalError(
                    f"{meta.path}: bad frame after recovery ({reason}) — "
                    "log mutated underneath the service"
                )
            for r in records:
                if r.seq >= start_seq:
                    yield r
            if records:
                expected = records[-1].seq + 1

    # ------------------------------------------------------------ truncate
    def truncate_upto(self, seq: int) -> int:
        """Drop whole segments fully covered by a durable snapshot.

        Removes every segment whose records all have ``seq`` at or
        below the given sequence (sealing the active segment first when
        it too is fully covered).  Partially covered segments stay —
        truncation is segment-granular so it never rewrites record
        bytes.  Returns the number of segments removed.
        """
        if self._fh is None:
            raise WalError("truncate on a closed/unrecovered log")
        assert self._active is not None
        if self._active.n_records > 0 and self._active.last_seq <= seq:
            self._rotate()
        removed = 0
        keep: list[_SegmentMeta] = []
        for meta in self._sealed:
            if meta.n_records > 0 and meta.last_seq <= seq:
                meta.path.unlink()
                removed += 1
            else:
                keep.append(meta)
        self._sealed = keep
        if removed:
            self._write_manifest()
        return removed

    # --------------------------------------------------------------- close
    def close(self) -> None:
        """Flush and close; the log stays on disk, appends now error."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
