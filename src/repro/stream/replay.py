"""Edge-log replay: the harness behind ``repro serve`` / ``repro replay``.

An *edge log* is the streaming input fixture: a line-oriented text file
of timestamped edge events, grouped into batches by timestamp::

    # repro-edge-log v1
    1 + 0 7 1.0
    1 + 3 4 1.0
    2 - 0 7 1.0

(columns: batch timestamp, op ``+``/``-``, endpoints, weight).
:func:`generate_edge_log` synthesizes one deterministically — planted
block communities whose membership rotates over time, so modularity
genuinely drifts and the service's full-rerun rung earns its keep —
and :func:`read_edge_log` streams it back batch by batch.

:class:`ReplayHarness` drives a :class:`~repro.stream.service.DetectionService`
over a log and ledgers one entry per batch (latency, graph size,
modularity, coverage, degradation rung) into ``BENCH_stream.json``.
The ledger is rewritten atomically after every batch and **merged by
sequence number** on restart, so a SIGKILL mid-run loses no completed
entries — re-running the same command after a crash resumes where the
journal left off and the final ledger covers every batch exactly once.
That, plus the service's own WAL recovery, is what the kill-chaos CI
job exercises.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError, ReproError
from repro.stream.service import DetectionService
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE
from repro.util.atomicio import atomic_write_text
from repro.util.log import get_logger

__all__ = [
    "EDGE_LOG_HEADER",
    "STREAM_BENCH_FORMAT",
    "STREAM_BENCH_VERSION",
    "generate_edge_log",
    "read_edge_log",
    "read_stream_bench",
    "ReplayHarness",
]

EDGE_LOG_HEADER = "# repro-edge-log v1"

STREAM_BENCH_FORMAT = "repro-stream-bench"
STREAM_BENCH_VERSION = 1

_log = get_logger("stream.replay")


# ------------------------------------------------------------------ edge log
def generate_edge_log(
    path: str | os.PathLike,
    *,
    n_batches: int = 24,
    batch_size: int = 64,
    n_vertices: int = 96,
    n_blocks: int = 4,
    p_intra: float = 0.85,
    p_delete: float = 0.15,
    drift_every: int = 0,
    seed: int = 0,
) -> Path:
    """Write a deterministic synthetic edge log; returns its path.

    Edges are unit-weight and drawn from a planted block structure:
    vertex ``v`` belongs to block ``(v + phase) % n_blocks`` where the
    phase advances every ``drift_every`` batches (``0`` freezes it) —
    each advance reshuffles membership so edges inserted under the old
    phase become inter-community noise and modularity drifts downward
    until the service's rerun rung re-detects.  ``p_delete`` of events
    remove a still-live earlier edge, exercising weighted deletes.
    """
    if n_batches < 1 or batch_size < 1 or n_vertices < 2:
        raise ValueError("need n_batches >= 1, batch_size >= 1, n_vertices >= 2")
    rng = np.random.default_rng(seed)
    live: list[tuple[int, int]] = []
    lines = [EDGE_LOG_HEADER]
    for t in range(1, n_batches + 1):
        phase = (t - 1) // drift_every if drift_every else 0
        for _ in range(batch_size):
            if live and float(rng.random()) < p_delete:
                k = int(rng.integers(len(live)))
                i, j = live[k]
                live[k] = live[-1]
                live.pop()
                lines.append(f"{t} - {i} {j} 1.0")
                continue
            block = int(rng.integers(n_blocks))
            members = np.arange(n_vertices)
            members = members[(members + phase) % n_blocks == block]
            i = int(members[rng.integers(len(members))])
            if float(rng.random()) < p_intra and len(members) > 1:
                j = i
                while j == i:
                    j = int(members[rng.integers(len(members))])
            else:
                j = i
                while j == i:
                    j = int(rng.integers(n_vertices))
            live.append((i, j))
            lines.append(f"{t} + {i} {j} 1.0")
    return atomic_write_text(path, "\n".join(lines) + "\n")


def read_edge_log(
    path: str | os.PathLike,
) -> Iterator[tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(t, i, j, w, op)`` per batch, in timestamp order.

    Raises :class:`~repro.errors.GraphFormatError` on a malformed log
    (bad header, short line, non-monotone timestamps).
    """
    p = Path(os.fspath(path))
    try:
        raw = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise GraphFormatError(f"{p}: unreadable edge log: {exc}") from exc
    lines = raw.splitlines()
    if not lines or lines[0].strip() != EDGE_LOG_HEADER:
        raise GraphFormatError(
            f"{p}: missing edge-log header {EDGE_LOG_HEADER!r}"
        )
    cur_t: int | None = None
    ii: list[int] = []
    jj: list[int] = []
    ww: list[float] = []
    op: list[int] = []

    def _flush():
        return (
            cur_t,
            np.asarray(ii, dtype=VERTEX_DTYPE),
            np.asarray(jj, dtype=VERTEX_DTYPE),
            np.asarray(ww, dtype=WEIGHT_DTYPE),
            np.asarray(op, dtype=np.int8),
        )

    for n, line in enumerate(lines[1:], start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 5 or parts[1] not in ("+", "-"):
            raise GraphFormatError(f"{p}:{n}: malformed edge event {line!r}")
        try:
            t = int(parts[0])
            i, j = int(parts[2]), int(parts[3])
            w = float(parts[4])
        except ValueError as exc:
            raise GraphFormatError(
                f"{p}:{n}: malformed edge event {line!r}"
            ) from exc
        if cur_t is not None and t < cur_t:
            raise GraphFormatError(
                f"{p}:{n}: timestamps must be non-decreasing "
                f"({t} after {cur_t})"
            )
        if cur_t is not None and t != cur_t:
            yield _flush()
            ii, jj, ww, op = [], [], [], []
        cur_t = t
        ii.append(i)
        jj.append(j)
        ww.append(w)
        op.append(1 if parts[1] == "+" else -1)
    if cur_t is not None:
        yield _flush()


# ------------------------------------------------------------------- ledger
def read_stream_bench(path: str | os.PathLike) -> dict:
    """Load and validate a ``BENCH_stream.json`` ledger.

    Raises :class:`~repro.errors.ReproError` on a torn, bit-flipped, or
    wrong-format file — a corrupt ledger must never be silently merged.
    """
    p = Path(os.fspath(path))
    try:
        data = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproError(f"{p}: unreadable stream bench ledger: {exc}") from exc
    if (
        not isinstance(data, dict)
        or data.get("format") != STREAM_BENCH_FORMAT
        or data.get("version") != STREAM_BENCH_VERSION
        or not isinstance(data.get("entries"), list)
    ):
        raise ReproError(f"{p}: not a {STREAM_BENCH_FORMAT} v{STREAM_BENCH_VERSION} ledger")
    return data


class ReplayHarness:
    """Streams an edge log through a service, ledgering every batch.

    The harness owns the service lifecycle: :meth:`run` opens it
    (running crash recovery), ingests every batch the service has not
    already applied, and closes it.  Killed mid-run, the same harness
    invocation re-run against the same directory picks up after the
    last recovered batch — the ledger merge keeps earlier entries.
    """

    def __init__(
        self,
        service: DetectionService,
        *,
        bench_path: str | os.PathLike | None = None,
        report_path: str | os.PathLike | None = None,
    ) -> None:
        self.service = service
        self.bench_path = bench_path
        self.report_path = report_path

    # ----------------------------------------------------------- internals
    def _load_entries(self) -> dict[int, dict]:
        if self.bench_path is None or not Path(self.bench_path).exists():
            return {}
        try:
            data = read_stream_bench(self.bench_path)
        except ReproError as exc:
            _log.warning("discarding unusable bench ledger: %s", exc)
            return {}
        return {int(e["seq"]): e for e in data["entries"] if "seq" in e}

    def _write_bench(self, entries: dict[int, dict]) -> None:
        if self.bench_path is None:
            return
        payload = {
            "format": STREAM_BENCH_FORMAT,
            "version": STREAM_BENCH_VERSION,
            "entries": [entries[k] for k in sorted(entries)],
            "recovery": self.service.report.as_dict(),
            "timeline": self.service.timeline.as_dict(),
        }
        atomic_write_text(
            self.bench_path, json.dumps(payload, indent=2) + "\n"
        )

    def _write_report(self) -> None:
        if self.report_path is None:
            return
        atomic_write_text(
            self.report_path,
            json.dumps(
                {
                    "recovery": self.service.report.as_dict(),
                    "summary": self.service.report.summary(),
                    "batch_seq": self.service.batch_seq,
                    "wal_seq": self.service.wal_seq,
                    "n_vertices": self.service.n_vertices,
                    "n_communities": self.service.n_communities,
                },
                indent=2,
            )
            + "\n",
        )

    # ----------------------------------------------------------------- run
    def run(
        self, log_path: str | os.PathLike, *, max_batches: int | None = None
    ) -> dict:
        """Replay the log end to end; returns a JSON-ready summary."""
        entries = self._load_entries()
        svc = self.service
        svc.open()
        # Backfill batches that recovery (not this harness invocation)
        # accounted for: WAL-tail replays carry full timeline samples;
        # batches folded into the snapshot before a crash could ledger
        # them get a minimal recovered stub.  Either way the final
        # ledger covers sequences 1..batch_seq with no holes.
        for sample in svc.timeline.batches:
            if sample.replayed and sample.seq not in entries:
                entries[sample.seq] = {
                    "seq": sample.seq,
                    "latency_s": sample.latency_s,
                    "n_vertices": sample.n_vertices,
                    "n_edges": sample.n_edges,
                    "n_communities": sample.n_communities,
                    "modularity": sample.modularity,
                    "coverage": sample.coverage,
                    "rerun": sample.rerun,
                    "recovered": True,
                }
        for t in range(1, svc.batch_seq + 1):
            if t not in entries:
                entries[t] = {"seq": t, "recovered": True}
        n_ingested = 0
        n_skipped = 0
        last = None
        for t, i, j, w, op in read_edge_log(log_path):
            if max_batches is not None and t > max_batches:
                break
            if t <= svc.batch_seq:
                n_skipped += 1
                continue
            res = svc.ingest(i, j, w, op, seq=t)
            last = res
            n_ingested += 1
            entries[res.seq] = {
                "seq": res.seq,
                "latency_s": res.latency_s,
                "n_vertices": res.n_vertices,
                "n_edges": res.n_edges,
                "n_communities": res.n_communities,
                "modularity": res.modularity,
                "coverage": res.coverage,
                "rerun": res.rerun,
                "n_unmatched_deletes": res.n_unmatched_deletes,
            }
            # Rewritten after *every* batch: a kill at any instant
            # leaves a complete, loadable ledger of all finished work.
            self._write_bench(entries)
        svc.close()
        self._write_bench(entries)
        self._write_report()
        summary = {
            "n_batches_ingested": n_ingested,
            "n_batches_recovered_or_skipped": n_skipped,
            "batch_seq": svc.batch_seq,
            "n_vertices": svc.n_vertices,
            "n_edges": svc.store.n_edges,
            "n_communities": svc.n_communities,
            "modularity": last.modularity if last is not None else None,
            "coverage": last.coverage if last is not None else None,
            "recovery": svc.report.as_dict(),
        }
        return summary
