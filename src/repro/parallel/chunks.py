"""Work-sharing chunk decomposition.

The OpenMP implementation divides each flat loop into per-thread chunks;
these helpers reproduce that split for the process pool and for tests that
reason about load balance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["chunk_ranges", "balanced_chunks"]


def chunk_ranges(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_chunks`` contiguous near-equal
    half-open ranges (OpenMP static scheduling).

    Chunk sizes differ by at most one; empty ranges are returned when
    ``n_chunks > n_items`` so every worker gets an assignment.
    """
    if n_chunks < 1:
        raise ValueError("need at least one chunk")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    bounds = np.linspace(0, n_items, n_chunks + 1).astype(np.int64)
    return [(int(bounds[k]), int(bounds[k + 1])) for k in range(n_chunks)]


def balanced_chunks(
    weights: np.ndarray, n_chunks: int
) -> list[tuple[int, int]]:
    """Split items with non-uniform ``weights`` into contiguous chunks of
    near-equal total weight (guided scheduling for skewed buckets).

    Used to balance power-law vertex buckets across workers; the paper
    instead *scatters* heavy buckets via the parity hash, and the tests
    compare both strategies' balance.
    """
    if n_chunks < 1:
        raise ValueError("need at least one chunk")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("weights must be 1-D")
    if len(weights) == 0:
        return [(0, 0)] * n_chunks
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    cum = np.cumsum(weights)
    total = cum[-1]
    targets = total * np.arange(1, n_chunks) / n_chunks
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate([[0], np.minimum(cuts, len(weights)), [len(weights)]])
    bounds = np.maximum.accumulate(bounds)
    return [(int(bounds[k]), int(bounds[k + 1])) for k in range(n_chunks)]
