"""Pluggable execution backends for chunked phase execution.

The supervised pool (:mod:`repro.parallel.pool`) gives one phase —
modularity scoring — multi-process execution.  This module turns that
capability into a first-class, selectable service: an
:class:`ExecutionBackend` maps an idempotent chunk function over a
shared-memory output block, and *any* phase kernel holding a
:class:`~repro.core.engine.RunContext` can request it via
``ctx.backend.map_chunks(...)`` instead of hard-coding a pool.

Two backends ship:

* ``serial`` — chunks run in the calling process, in order.  Zero
  process overhead, always available, and the reference for parity
  tests (backend choice never changes results, only the execution
  profile).
* ``process-pool`` — chunks run on the supervised fork-based
  :class:`~repro.parallel.pool.SharedArrayPool` with the full recovery
  ladder (retry/backoff, deadlines, parent-side validation, in-process
  degradation; see docs/RESILIENCE.md).

Every ``map_chunks`` call is wrapped in a ``"backend_map"`` span carrying
the backend identity and worker count, and mirrored to the
``backend.<name>.maps`` counter and ``backend.<name>.workers`` gauge, so
which backend executed which phase is always visible in the trace and
the benchmark ledger.

Backends register by name (:func:`register_backend`) exactly like phase
kernels in :mod:`repro.core.registry`; the CLI's ``--backend`` choices
come from :func:`backend_names`.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.parallel.pool import SharedArrayPool
from repro.resilience.faults import FaultPlan
from repro.resilience.report import RecoveryReport
from repro.resilience.retry import RetryPolicy

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "register_backend",
    "backend_names",
    "create_backend",
    "as_backend",
]

#: Chunk function signature shared with :class:`SharedArrayPool`:
#: ``fn((shm_name, lo, hi))`` writes the ``[lo, hi)`` slice of the shared
#: output block and nothing else (idempotence is what makes re-execution
#: and backend swapping safe).
ChunkFn = Callable[[tuple[str, int, int]], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend implements.

    Attributes
    ----------
    name:
        Registry identity, stamped on spans and metrics.
    n_workers:
        Degree of parallelism the backend executes with (1 for serial).
    """

    name: str
    n_workers: int

    def map_chunks(
        self,
        fn: ChunkFn,
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        """Apply ``fn`` across chunk ranges of ``[0, n_items)``."""
        ...  # pragma: no cover - protocol stub


class _PoolBackedBackend:
    """Shared implementation: both built-ins delegate to the supervised
    pool (which runs inline when ``n_workers == 1``), so the recovery
    ladder, chunk spans and worker metrics behave identically and only
    the degree of parallelism differs."""

    name = "pool-backed"

    def __init__(
        self, n_workers: int | None = None, *, chunks_per_worker: int = 1
    ) -> None:
        self._pool = SharedArrayPool(
            n_workers, chunks_per_worker=chunks_per_worker
        )
        self.n_workers = self._pool.n_workers
        self.chunks_per_worker = self._pool.chunks_per_worker

    def map_chunks(
        self,
        fn: ChunkFn,
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        tr = as_tracer(tracer)
        with tr.span(
            "backend_map",
            backend=self.name,
            n_workers=self.n_workers,
            chunks_per_worker=self.chunks_per_worker,
        ) as sp:
            rep = self._pool.run(
                fn,
                shm_name,
                n_items,
                tracer=tracer,
                policy=policy,
                faults=faults,
                validate=validate,
                report=report,
            )
            sp.set(items=n_items, retries=rep.retries)
        tr.counter(f"backend.{self.name}.maps").inc()
        tr.gauge(f"backend.{self.name}.workers").set(self.n_workers)
        return rep

    def rechunked(self, factor: int = 2) -> "_PoolBackedBackend":
        """A new backend of the same kind with ``factor``× the chunk
        count (i.e. chunk size divided by ``factor``).

        The run guardian's "halve-chunks" degradation rung uses this to
        shrink the unit of retried/validated work without changing the
        degree of parallelism.
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return self._with_chunks(self.chunks_per_worker * factor)

    def _with_chunks(self, chunks_per_worker: int) -> "_PoolBackedBackend":
        return type(self)(
            self.n_workers, chunks_per_worker=chunks_per_worker
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"chunks_per_worker={self.chunks_per_worker})"
        )


class SerialBackend(_PoolBackedBackend):
    """In-process chunk execution — the always-available default."""

    name = "serial"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        chunks_per_worker: int = 1,
    ) -> None:
        # A serial backend is serial regardless of the requested width;
        # accepting (and ignoring) n_workers keeps one factory signature
        # across all backends.
        super().__init__(1, chunks_per_worker=chunks_per_worker)


class ProcessPoolBackend(_PoolBackedBackend):
    """Supervised fork-based worker-process execution.

    ``n_workers=None`` sizes the pool to the machine's CPU count.  The
    retry/deadline/degradation behavior is
    :class:`~repro.parallel.pool.SharedArrayPool`'s (see
    docs/RESILIENCE.md); a per-backend default :class:`RetryPolicy` can
    be set at construction and is used whenever ``map_chunks`` is not
    given one explicitly.
    """

    name = "process-pool"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        policy: RetryPolicy | None = None,
        chunks_per_worker: int = 1,
    ) -> None:
        super().__init__(n_workers, chunks_per_worker=chunks_per_worker)
        self.policy = policy

    def _with_chunks(self, chunks_per_worker: int) -> "ProcessPoolBackend":
        return ProcessPoolBackend(
            self.n_workers,
            policy=self.policy,
            chunks_per_worker=chunks_per_worker,
        )

    def map_chunks(
        self,
        fn: ChunkFn,
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        return super().map_chunks(
            fn,
            shm_name,
            n_items,
            tracer=tracer,
            policy=policy if policy is not None else self.policy,
            faults=faults,
            validate=validate,
            report=report,
        )


# ---------------------------------------------------------------- registry
_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory; called as ``factory(n_workers=...)``."""
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _BACKENDS and not replace:
        raise ValueError(
            f"backend {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _BACKENDS[name] = factory


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted (CLI choices)."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    name: str, *, n_workers: int | None = None
) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        available = ", ".join(backend_names()) or "none"
        raise ValueError(
            f"unknown backend {name!r} (available: {available})"
        ) from None
    return factory(n_workers=n_workers)


def as_backend(
    backend: "ExecutionBackend | str | None",
    *,
    n_workers: int | None = None,
) -> ExecutionBackend:
    """Normalize a backend argument to a usable instance.

    ``None`` resolves to :class:`SerialBackend` unless ``n_workers`` asks
    for real parallelism, in which case it resolves to
    :class:`ProcessPoolBackend` — the historical behavior of the
    ``--workers`` flag.  A string resolves through the registry; an
    instance passes through unchanged.
    """
    if backend is None:
        if n_workers is not None and n_workers > 1:
            return ProcessPoolBackend(n_workers)
        return SerialBackend()
    if isinstance(backend, str):
        return create_backend(backend, n_workers=n_workers)
    return backend


register_backend("serial", SerialBackend)
register_backend(
    "process-pool", lambda n_workers=None: ProcessPoolBackend(n_workers)
)
