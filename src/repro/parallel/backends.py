"""Pluggable execution backends for chunked phase execution.

The supervised pool (:mod:`repro.parallel.pool`) gives one phase —
modularity scoring — multi-process execution.  This module turns that
capability into a first-class, selectable service: an
:class:`ExecutionBackend` maps an idempotent chunk function over a
shared-memory output block, and *any* phase kernel holding a
:class:`~repro.core.engine.RunContext` can request it via
``ctx.backend.map_chunks(...)`` instead of hard-coding a pool.

Three backends ship:

* ``serial`` — chunks run in the calling process, in order.  Zero
  process overhead, always available, and the reference for parity
  tests (backend choice never changes results, only the execution
  profile).
* ``process-pool`` — chunks run on the supervised fork-based
  :class:`~repro.parallel.pool.SharedArrayPool` with the full recovery
  ladder (retry/backoff, deadlines, parent-side validation, in-process
  degradation; see docs/RESILIENCE.md).
* ``sharded`` — out-of-core execution: each level's community graph is
  spilled to a checksummed on-disk store and the pipeline streams it
  shard-at-a-time (:class:`ShardedBackend`, docs/OUT_OF_CORE.md).  This
  is also the guardian's spill rung target when a run breaches its
  memory budget.

Every ``map_chunks`` call is wrapped in a ``"backend_map"`` span carrying
the backend identity and worker count, and mirrored to the
``backend.<name>.maps`` counter and ``backend.<name>.workers`` gauge, so
which backend executed which phase is always visible in the trace and
the benchmark ledger.

Backends register by name (:func:`register_backend`) exactly like phase
kernels in :mod:`repro.core.registry`; the CLI's ``--backend`` choices
come from :func:`backend_names`.
"""

from __future__ import annotations

import logging
import os
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.parallel.pool import SharedArrayPool
from repro.resilience.faults import FaultPlan
from repro.resilience.report import RecoveryReport
from repro.resilience.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.graph.csr import ShardedCSRStore
    from repro.graph.graph import CommunityGraph

_log = logging.getLogger(__name__)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "register_backend",
    "backend_names",
    "create_backend",
    "as_backend",
]

#: Chunk function signature shared with :class:`SharedArrayPool`:
#: ``fn((shm_name, lo, hi))`` writes the ``[lo, hi)`` slice of the shared
#: output block and nothing else (idempotence is what makes re-execution
#: and backend swapping safe).
ChunkFn = Callable[[tuple[str, int, int]], None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Protocol every execution backend implements.

    Attributes
    ----------
    name:
        Registry identity, stamped on spans and metrics.
    n_workers:
        Degree of parallelism the backend executes with (1 for serial).
    """

    name: str
    n_workers: int

    def map_chunks(
        self,
        fn: ChunkFn,
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        """Apply ``fn`` across chunk ranges of ``[0, n_items)``."""
        ...  # pragma: no cover - protocol stub


class _PoolBackedBackend:
    """Shared implementation: both built-ins delegate to the supervised
    pool (which runs inline when ``n_workers == 1``), so the recovery
    ladder, chunk spans and worker metrics behave identically and only
    the degree of parallelism differs."""

    name = "pool-backed"

    def __init__(
        self, n_workers: int | None = None, *, chunks_per_worker: int = 1
    ) -> None:
        self._pool = SharedArrayPool(
            n_workers, chunks_per_worker=chunks_per_worker
        )
        self.n_workers = self._pool.n_workers
        self.chunks_per_worker = self._pool.chunks_per_worker

    def map_chunks(
        self,
        fn: ChunkFn,
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        tr = as_tracer(tracer)
        with tr.span(
            "backend_map",
            backend=self.name,
            n_workers=self.n_workers,
            chunks_per_worker=self.chunks_per_worker,
        ) as sp:
            rep = self._pool.run(
                fn,
                shm_name,
                n_items,
                tracer=tracer,
                policy=policy,
                faults=faults,
                validate=validate,
                report=report,
            )
            sp.set(items=n_items, retries=rep.retries)
        tr.counter(f"backend.{self.name}.maps").inc()
        tr.gauge(f"backend.{self.name}.workers").set(self.n_workers)
        return rep

    def rechunked(self, factor: int = 2) -> "_PoolBackedBackend":
        """A new backend of the same kind with ``factor``× the chunk
        count (i.e. chunk size divided by ``factor``).

        The run guardian's "halve-chunks" degradation rung uses this to
        shrink the unit of retried/validated work without changing the
        degree of parallelism.
        """
        if factor < 1:
            raise ValueError("factor must be >= 1")
        return self._with_chunks(self.chunks_per_worker * factor)

    def _with_chunks(self, chunks_per_worker: int) -> "_PoolBackedBackend":
        return type(self)(
            self.n_workers, chunks_per_worker=chunks_per_worker
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n_workers={self.n_workers}, "
            f"chunks_per_worker={self.chunks_per_worker})"
        )


class SerialBackend(_PoolBackedBackend):
    """In-process chunk execution — the always-available default."""

    name = "serial"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        chunks_per_worker: int = 1,
    ) -> None:
        # A serial backend is serial regardless of the requested width;
        # accepting (and ignoring) n_workers keeps one factory signature
        # across all backends.
        super().__init__(1, chunks_per_worker=chunks_per_worker)


class ProcessPoolBackend(_PoolBackedBackend):
    """Supervised fork-based worker-process execution.

    ``n_workers=None`` sizes the pool to the machine's CPU count.  The
    retry/deadline/degradation behavior is
    :class:`~repro.parallel.pool.SharedArrayPool`'s (see
    docs/RESILIENCE.md); a per-backend default :class:`RetryPolicy` can
    be set at construction and is used whenever ``map_chunks`` is not
    given one explicitly.
    """

    name = "process-pool"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        policy: RetryPolicy | None = None,
        chunks_per_worker: int = 1,
    ) -> None:
        super().__init__(n_workers, chunks_per_worker=chunks_per_worker)
        self.policy = policy

    def _with_chunks(self, chunks_per_worker: int) -> "ProcessPoolBackend":
        return ProcessPoolBackend(
            self.n_workers,
            policy=self.policy,
            chunks_per_worker=chunks_per_worker,
        )

    def map_chunks(
        self,
        fn: ChunkFn,
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        return super().map_chunks(
            fn,
            shm_name,
            n_items,
            tracer=tracer,
            policy=policy if policy is not None else self.policy,
            faults=faults,
            validate=validate,
            report=report,
        )


class ShardedBackend(SerialBackend):
    """Out-of-core execution: each level's graph is spilled to disk and
    the pipeline's kernels stream it shard-at-a-time.

    The backend itself still satisfies :class:`ExecutionBackend` (it is a
    :class:`SerialBackend` for ``map_chunks``, so every guardian rung that
    rechunks or retries keeps working); what makes it *sharded* is the
    capability surface the engine probes for:

    * ``sharded = True`` — the engine routes the score/match/contract
      phases through the streaming kernels in
      :mod:`repro.core.outofcore` whenever the level's graph carries a
      spill store.
    * :meth:`prepare_level` — called by the engine at the top of every
      level; spills the community graph under ``spill_dir/level_NNNNN``
      via :class:`~repro.graph.csr.ShardedCSRStore` and returns the
      value-identical memmap-backed graph.  The previous level's store is
      deleted once the new one is durable, so at most two levels of
      spill exist at any instant.

    Because the memmap-backed graph is value-identical to the in-memory
    one and the streaming kernels are bit-identical to their in-memory
    counterparts, a sharded run produces exactly the same dendrogram,
    level statistics and recorder profile as a serial run — only the
    residency of the working set changes (file-backed pages the OS can
    evict instead of anonymous memory it cannot).

    ``spill_dir=None`` creates a private temporary directory removed when
    the backend is garbage-collected or :meth:`release` is called; a
    caller-provided directory is never deleted wholesale (only the
    per-level stores inside it are).
    """

    name = "sharded"
    #: Capability flag the engine checks to route phases out-of-core.
    sharded = True

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        spill_dir: str | os.PathLike | None = None,
        n_shards: int | None = None,
        shard_edges: int | None = None,
        chunks_per_worker: int = 1,
        faults: FaultPlan | None = None,
    ) -> None:
        super().__init__(1, chunks_per_worker=chunks_per_worker)
        if spill_dir is None:
            self.spill_dir = Path(tempfile.mkdtemp(prefix="repro-spill-"))
            self._owns_spill_dir = True
        else:
            self.spill_dir = Path(os.fspath(spill_dir))
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            self._owns_spill_dir = False
        self.n_shards = n_shards
        self.shard_edges = shard_edges
        self.faults = faults
        self._store: "ShardedCSRStore | None" = None
        self.spilled_levels = 0
        self.spilled_bytes = 0
        self.spill_failures = 0
        # Private temp dirs must not outlive the backend even when the
        # caller never releases it explicitly.
        self._finalizer = (
            weakref.finalize(
                self, shutil.rmtree, str(self.spill_dir), True
            )
            if self._owns_spill_dir
            else None
        )

    # ------------------------------------------------------------- spilling
    def prepare_level(
        self,
        graph: "CommunityGraph",
        level: int,
        *,
        tracer: Tracer | NullTracer | None = None,
    ) -> "CommunityGraph":
        """Spill ``graph`` for ``level`` and return its memmap-backed twin.

        Idempotent: a graph that already carries a spill store (e.g. a
        level re-entered after a guardian retry) is returned unchanged.
        The spill is visible in the trace as a ``spill_level`` span plus
        the ``spill.levels`` / ``spill.bytes_written`` counters.

        A spill that *fails* — disk full (``ENOSPC``), or a store that
        reopens torn — degrades to in-memory execution for this level
        instead of crashing the run: results are bit-identical either
        way, so the only cost is residency.  The failure is loud
        (``spill.failures`` counter, ``failed`` span attribute, warning
        log) and the next level retries spilling from scratch.
        """
        from repro.errors import SpillError
        from repro.graph.csr import ShardedCSRStore

        if getattr(graph, "spill_store", None) is not None:
            return graph
        tr = as_tracer(tracer)
        directory = self.spill_dir / f"level_{level:05d}"
        with tr.span(
            "spill_level",
            level=level,
            n_vertices=graph.n_vertices,
            n_edges=graph.n_edges,
        ) as sp:
            try:
                store = ShardedCSRStore.spill(
                    graph,
                    directory,
                    n_shards=self.n_shards,
                    shard_edges=self.shard_edges,
                    faults=self.faults,
                    artifact="spill-graph",
                    index=level,
                )
            except (OSError, SpillError) as exc:
                sp.set(failed=f"{type(exc).__name__}: {exc}")
                tr.counter("spill.failures").inc()
                self.spill_failures += 1
                _log.warning(
                    "spill of level %d failed (%s); running the level "
                    "in-memory instead",
                    level,
                    exc,
                )
                shutil.rmtree(directory, ignore_errors=True)
                return graph
            nbytes = store.nbytes
            sp.set(
                items=graph.n_edges,
                bytes=nbytes,
                n_shards=store.n_shards,
                path=str(directory),
            )
        tr.counter("spill.levels").inc()
        tr.counter("spill.bytes_written").inc(nbytes)
        self.spilled_levels += 1
        self.spilled_bytes += nbytes
        previous, self._store = self._store, store
        if previous is not None:
            # The contracted graph's arrays may be scratch memmaps inside
            # the previous store's directory; they were just re-spilled
            # into the new store, and POSIX keeps already-mapped pages
            # valid after unlink, so dropping the old store is safe.
            previous.cleanup()
        return store.as_graph()

    @property
    def open_level_stores(self) -> int:
        """Level stores currently held open (0 or 1 by construction —
        :meth:`prepare_level` drops the previous store once the new one
        is durable).  The telemetry sampler exports this as a counter
        track so a store leak shows up as a climbing series."""
        return 1 if self._store is not None else 0

    def release(self) -> None:
        """Drop the current spill store (and a private temp directory).

        The backend stays usable afterwards — the next
        :meth:`prepare_level` recreates the directory tree.
        """
        if self._store is not None:
            self._store.cleanup()
            self._store = None
        if self._owns_spill_dir:
            shutil.rmtree(self.spill_dir, ignore_errors=True)

    # ------------------------------------------------------------ rechunking
    def _with_chunks(self, chunks_per_worker: int) -> "ShardedBackend":
        clone = ShardedBackend(
            self.n_workers,
            spill_dir=self.spill_dir,
            n_shards=self.n_shards,
            shard_edges=self.shard_edges,
            chunks_per_worker=chunks_per_worker,
            faults=self.faults,
        )
        # The clone replaces this backend in the run context; hand over
        # the live store (and temp-dir ownership) so the cleanup chain
        # keeps at most two levels of spill on disk.
        # A finalizer is bound to one object's lifetime, so ownership
        # transfer means detaching ours and binding a fresh one to the
        # clone.
        clone._store, self._store = self._store, None
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._owns_spill_dir:
            self._owns_spill_dir = False
            clone._owns_spill_dir = True
            clone._finalizer = weakref.finalize(
                clone, shutil.rmtree, str(clone.spill_dir), True
            )
        return clone

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(spill_dir={str(self.spill_dir)!r}, "
            f"n_shards={self.n_shards}, shard_edges={self.shard_edges}, "
            f"chunks_per_worker={self.chunks_per_worker})"
        )


# ---------------------------------------------------------------- registry
_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[..., ExecutionBackend],
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory; called as ``factory(n_workers=...)``."""
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _BACKENDS and not replace:
        raise ValueError(
            f"backend {name!r} is already registered "
            "(pass replace=True to override)"
        )
    _BACKENDS[name] = factory


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted (CLI choices)."""
    return tuple(sorted(_BACKENDS))


def create_backend(
    name: str, *, n_workers: int | None = None
) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _BACKENDS[name]
    except KeyError:
        available = ", ".join(backend_names()) or "none"
        raise ValueError(
            f"unknown backend {name!r} (available: {available})"
        ) from None
    return factory(n_workers=n_workers)


def as_backend(
    backend: "ExecutionBackend | str | None",
    *,
    n_workers: int | None = None,
) -> ExecutionBackend:
    """Normalize a backend argument to a usable instance.

    ``None`` resolves to :class:`SerialBackend` unless ``n_workers`` asks
    for real parallelism, in which case it resolves to
    :class:`ProcessPoolBackend` — the historical behavior of the
    ``--workers`` flag.  A string resolves through the registry; an
    instance passes through unchanged.
    """
    if backend is None:
        if n_workers is not None and n_workers > 1:
            return ProcessPoolBackend(n_workers)
        return SerialBackend()
    if isinstance(backend, str):
        return create_backend(backend, n_workers=n_workers)
    return backend


register_backend("serial", SerialBackend)
register_backend(
    "process-pool", lambda n_workers=None: ProcessPoolBackend(n_workers)
)
register_backend(
    "sharded", lambda n_workers=None: ShardedBackend(n_workers)
)
