"""Vectorized equivalents of the paper's fine-grained parallel primitives.

The C implementation leans on three machine facilities: atomic max/min
into per-vertex slots (full/empty bits or compare-and-swap loops), atomic
fetch-and-add, and prefix sums for contiguous bucket layout.  Each has an
exact whole-array NumPy counterpart used by the core kernels; they are
kept in one place so the matching/contraction code reads like the paper's
pseudocode.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segmented_max_at", "segmented_min_at", "prefix_sum"]


def segmented_max_at(
    out: np.ndarray, index: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """``out[index[k]] = max(out[index[k]], values[k])`` for all k.

    The vectorized form of the atomic-max claim loop in the matching
    kernel.  Mutates and returns ``out``.
    """
    np.maximum.at(out, index, values)
    return out


def segmented_min_at(
    out: np.ndarray, index: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """``out[index[k]] = min(out[index[k]], values[k])`` for all k."""
    np.minimum.at(out, index, values)
    return out


def prefix_sum(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: offsets[v] = Σ counts[:v], length ``n+1``.

    The synchronization the paper *avoids* by allowing non-contiguous
    buckets; provided for the contiguous layout used here and for tests
    comparing both layouts' bookkeeping.
    """
    counts = np.asarray(counts)
    out = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out
