"""Process-pool execution over shared memory: the GIL workaround.

The paper's OpenMP port runs flat loops over shared arrays from many
threads.  CPython's GIL forbids that with threads, so this module
demonstrates the documented alternative: ``fork``-ed worker processes
inherit the input arrays copy-on-write and write results into a
:class:`multiprocessing.shared_memory.SharedMemory` output block —
zero-copy in both directions.

:func:`parallel_edge_scores` applies the pattern to the scoring kernel
(the naturally data-parallel stage).  On a single-core box this adds
process overhead rather than speed; it exists so the library is actually
multi-core capable where cores exist, and it is integration-tested with
small worker counts.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.parallel.chunks import chunk_ranges
from repro.types import SCORE_DTYPE
from repro.util.timing import Timer

__all__ = ["SharedArrayPool", "parallel_edge_scores"]

# Worker-side state installed by the fork (inherited globals).
_WORK: dict[str, object] = {}


def _score_chunk(args: tuple[str, int, int]) -> None:
    """Compute modularity ΔQ for edges [lo, hi) into the shared output."""
    shm_name, lo, hi = args
    ei: np.ndarray = _WORK["ei"]  # type: ignore[assignment]
    ej: np.ndarray = _WORK["ej"]  # type: ignore[assignment]
    w: np.ndarray = _WORK["w"]  # type: ignore[assignment]
    vol: np.ndarray = _WORK["vol"]  # type: ignore[assignment]
    w_total: float = _WORK["w_total"]  # type: ignore[assignment]
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        out = np.ndarray(len(ei), dtype=SCORE_DTYPE, buffer=shm.buf)
        out[lo:hi] = w[lo:hi] / w_total - vol[ei[lo:hi]] * vol[ej[lo:hi]] / (
            2.0 * w_total**2
        )
    finally:
        shm.close()


class SharedArrayPool:
    """A small fork-based pool mapping chunk tasks over shared arrays.

    Falls back to in-process execution when ``fork`` is unavailable or
    ``n_workers == 1``, so callers never need a platform branch.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        if n_workers is None:
            n_workers = multiprocessing.cpu_count()
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = n_workers
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = None

    @property
    def uses_processes(self) -> bool:
        return self._ctx is not None and self.n_workers > 1

    def run(
        self,
        fn: Callable[[tuple[str, int, int]], None],
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        """Apply ``fn`` to one (shm_name, lo, hi) task per worker.

        With a tracer attached, the whole map gets a ``"pool_run"`` span
        and each chunk a ``"pool_chunk"`` child.  In process mode the
        chunk spans are recorded parent-side after the map returns (the
        workers cannot share the tracer), carrying the worker-measured
        seconds in the ``worker_s`` attribute; their start/end
        timestamps are therefore approximate while ``worker_s`` is
        exact.
        """
        tr = as_tracer(tracer)
        tasks = [
            (shm_name, lo, hi)
            for lo, hi in chunk_ranges(n_items, self.n_workers)
            if hi > lo
        ]
        with tr.span("pool_run") as sp:
            sp.set(
                items=n_items,
                n_workers=self.n_workers,
                n_chunks=len(tasks),
                mode="processes" if self.uses_processes else "inline",
            )
            if not self.uses_processes:
                for task in tasks:
                    with tr.span("pool_chunk") as csp:
                        fn(task)
                        csp.set(items=task[2] - task[1], lo=task[1], hi=task[2])
                return
            assert self._ctx is not None
            with self._ctx.Pool(processes=self.n_workers) as pool:
                if tr.enabled:
                    elapsed = pool.map(_timed_call, [(fn, t) for t in tasks])
                    for task, secs in zip(tasks, elapsed):
                        with tr.span("pool_chunk") as csp:
                            csp.set(
                                items=task[2] - task[1],
                                lo=task[1],
                                hi=task[2],
                                worker_s=secs,
                            )
                else:
                    pool.map(fn, tasks)


def _timed_call(
    args: tuple[Callable[[tuple[str, int, int]], None], tuple[str, int, int]]
) -> float:
    """Worker-side wrapper timing one chunk task; returns seconds."""
    fn, task = args
    with Timer() as t:
        fn(task)
    return t.elapsed


def parallel_edge_scores(
    graph: CommunityGraph,
    *,
    n_workers: int | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> np.ndarray:
    """Modularity ΔQ scores computed by a process pool over shared memory.

    Bit-identical to ``ModularityScorer().score(graph)`` (same arithmetic,
    chunked); the equivalence is integration-tested.
    """
    e = graph.edges
    m = e.n_edges
    w_total = graph.total_weight()
    if m == 0 or w_total == 0:
        return np.zeros(m, dtype=SCORE_DTYPE)

    # Stage worker inputs in module globals; fork inherits them read-only.
    _WORK["ei"] = e.ei
    _WORK["ej"] = e.ej
    _WORK["w"] = e.w
    _WORK["vol"] = graph.strengths()
    _WORK["w_total"] = w_total

    shm = shared_memory.SharedMemory(
        create=True, size=m * np.dtype(SCORE_DTYPE).itemsize
    )
    try:
        pool = SharedArrayPool(n_workers)
        pool.run(_score_chunk, shm.name, m, tracer=tracer)
        out = np.ndarray(m, dtype=SCORE_DTYPE, buffer=shm.buf).copy()
    finally:
        shm.close()
        shm.unlink()
        _WORK.clear()
    return out
