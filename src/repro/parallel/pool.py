"""Process-pool execution over shared memory: the GIL workaround, hardened.

The paper's OpenMP port runs flat loops over shared arrays from many
threads.  CPython's GIL forbids that with threads, so this module
demonstrates the documented alternative: ``fork``-ed worker processes
inherit the input arrays copy-on-write and write results into a
:class:`multiprocessing.shared_memory.SharedMemory` output block —
zero-copy in both directions.

This layer is also where execution fails ugly in production, so
:class:`SharedArrayPool` supervises its workers instead of trusting them:

* each chunk runs in its own worker process whose **exit code and
  sentinel** are monitored — a crashed worker is detected, not hung on;
* failed chunks are **re-executed** with capped exponential backoff and
  an optional **per-chunk deadline** (see
  :class:`repro.resilience.RetryPolicy`);
* chunk outputs can be **validated parent-side** (NaN/inf scans), so
  silent corruption is treated like a crash;
* a chunk that exhausts its retry budget **degrades to in-process
  execution** in the parent rather than failing the run;
* every recovery action is counted in a
  :class:`repro.resilience.RecoveryReport` and mirrored to the tracer's
  ``resilience.*`` counters.

Because chunks write disjoint slices of the output block, re-execution
is idempotent: a recovered run is bit-identical to a fault-free one.

:func:`parallel_edge_scores` applies the pattern to the scoring kernel
(the naturally data-parallel stage), and
:class:`ParallelModularityScorer` wraps it in the
:class:`~repro.core.scoring.EdgeScorer` protocol so the whole
agglomeration pipeline can run on the supervised pool.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from multiprocessing.connection import wait as _sentinel_wait
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ChunkFailureError
from repro.graph.graph import CommunityGraph
from repro.obs.metrics import (
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.telemetry import record_worker_heartbeat
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.parallel.chunks import chunk_ranges
from repro.platform.kernels import TraceRecorder
from repro.resilience.faults import FaultPlan
from repro.resilience.report import RecoveryReport
from repro.resilience.retry import RetryPolicy
from repro.types import SCORE_DTYPE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends → pool)
    from repro.parallel.backends import ExecutionBackend

__all__ = [
    "SharedOutput",
    "SharedArrayPool",
    "parallel_edge_scores",
    "ParallelModularityScorer",
    "worker_metrics",
]

# Worker-side state installed by the fork (inherited globals).
_WORK: dict[str, object] = {}

#: The registry chunk functions record into.  In the parent (inline or
#: degraded execution) :meth:`SharedArrayPool.run` points this at the
#: tracer's registry; in a forked worker :func:`_run_chunk_in_worker`
#: replaces it with a fresh registry whose snapshot is shipped back over
#: a queue and merged parent-side — either way nothing is dropped.
_WORKER_METRICS: MetricsRegistry | NullMetricsRegistry = NullMetricsRegistry()

#: Power-of-two edges sized for per-chunk item counts (up to 16M edges).
_CHUNK_ITEM_EDGES: tuple[float, ...] = tuple(float(2**k) for k in range(25))

#: Power-of-two millisecond edges for worker queue-wait (fork + schedule)
#: latency, 1 ms .. ~32 s.
_QUEUE_WAIT_MS_EDGES: tuple[float, ...] = tuple(float(2**k) for k in range(16))


def worker_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The metrics registry a pool chunk function should record into.

    Valid both in forked workers (a fresh per-attempt registry whose
    contents are aggregated into the parent tracer when the attempt
    completes) and in the parent's inline/degraded execution paths (the
    tracer's own registry).  Outside a pool run this is a shared no-op.
    """
    return _WORKER_METRICS


def _score_chunk(args: tuple[str, int, int]) -> None:
    """Compute modularity ΔQ for edges [lo, hi) into the shared output."""
    shm_name, lo, hi = args
    ei: np.ndarray = _WORK["ei"]  # type: ignore[assignment]
    ej: np.ndarray = _WORK["ej"]  # type: ignore[assignment]
    w: np.ndarray = _WORK["w"]  # type: ignore[assignment]
    vol: np.ndarray = _WORK["vol"]  # type: ignore[assignment]
    w_total: float = _WORK["w_total"]  # type: ignore[assignment]
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        out = np.ndarray(len(ei), dtype=SCORE_DTYPE, buffer=shm.buf)
        out[lo:hi] = w[lo:hi] / w_total - vol[ei[lo:hi]] * vol[ej[lo:hi]] / (
            2.0 * w_total**2
        )
    finally:
        shm.close()
    m = worker_metrics()
    m.counter("pool.edges_scored").inc(int(hi - lo))
    m.histogram("pool.chunk_items", _CHUNK_ITEM_EDGES).observe(hi - lo)


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment, tolerating live views and double frees.

    A still-exported ndarray view makes ``close()`` raise ``BufferError``;
    the mapping then lives until the view dies, but the *named segment*
    must still be unlinked so nothing leaks past the process.
    """
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedOutput:
    """A shared-memory output block with guaranteed close+unlink.

    Cleanup runs on ``with``-exit *and* via a ``weakref.finalize``
    finalizer, so the named segment is released on every exit path —
    exceptions, early returns, or the owner simply being garbage
    collected — and never trips a ``resource_tracker`` leak warning.
    """

    def __init__(self, n_items: int, dtype: np.dtype | type) -> None:
        self.n_items = int(n_items)
        self.dtype = np.dtype(dtype)
        nbytes = max(1, self.n_items * self.dtype.itemsize)
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._finalizer = weakref.finalize(self, _release_segment, self._shm)

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    def array(self) -> np.ndarray:
        """A live view over the block; copy it before release."""
        return np.ndarray(self.n_items, dtype=self.dtype, buffer=self._shm.buf)

    def release(self) -> None:
        """Close and unlink now (idempotent)."""
        self._finalizer()

    def __enter__(self) -> "SharedOutput":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


def _run_chunk_in_worker(
    fn: Callable[[tuple[str, int, int]], None],
    task: tuple[str, int, int],
    chunk_index: int,
    attempt: int,
    faults: FaultPlan | None,
    metrics_queue=None,
    submit_ns: int | None = None,
) -> None:
    """Worker-process entry: apply any injected fault, then run the chunk.

    Faults fire *only* here, inside the forked child — the parent's
    degraded in-process path calls ``fn`` directly, which is why even a
    chunk whose every worker attempt is killed still completes.

    When ``metrics_queue`` is given, the chunk runs against a fresh
    :class:`~repro.obs.MetricsRegistry` (the fork's copy of the parent
    registry is invisible to the parent, so recording there would drop
    everything) and its snapshot is shipped back for parent-side
    merging, alongside a **flight record**: the worker's pid, the
    queue wait (monotonic delta from the parent's ``submit_ns`` stamp to
    worker entry — CLOCK_MONOTONIC is machine-wide on Linux, so the two
    stamps are comparable), and the self-measured exec window around
    ``fn``.  A killed worker never reaches the ``put``, so partial
    attempts contribute nothing.
    """
    global _WORKER_METRICS
    entry_ns = time.monotonic_ns()
    spec = faults.decide(chunk_index, attempt) if faults is not None else None
    if spec is not None:
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
        elif spec.kind == "kill":
            os._exit(spec.exit_code)
    if metrics_queue is not None:
        _WORKER_METRICS = MetricsRegistry()
    exec_start_ns = time.monotonic_ns()
    fn(task)
    exec_end_ns = time.monotonic_ns()
    if spec is not None and spec.kind == "corrupt":
        shm_name, lo, hi = task
        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            out = np.ndarray(hi, dtype=SCORE_DTYPE, buffer=shm.buf)
            out[lo:hi] = np.nan
        finally:
            shm.close()
    if metrics_queue is not None:
        metrics_queue.put(
            {
                "metrics": _WORKER_METRICS.snapshot(),
                "flight": {
                    "pid": os.getpid(),
                    "chunk": chunk_index,
                    "attempt": attempt,
                    "lo": task[1],
                    "hi": task[2],
                    "start_ns": exec_start_ns,
                    "end_ns": exec_end_ns,
                    "queue_wait_s": (
                        (entry_ns - submit_ns) / 1e9
                        if submit_ns is not None
                        else None
                    ),
                },
            }
        )


@dataclass
class _ChunkState:
    """Supervision state of one chunk across its attempts."""

    index: int
    task: tuple[str, int, int]
    attempt: int = 0
    not_before: float = 0.0  # monotonic time gating the next launch


class SharedArrayPool:
    """A supervised fork-based pool mapping chunk tasks over shared arrays.

    Falls back to in-process execution when ``fork`` is unavailable or
    ``n_workers == 1``, so callers never need a platform branch.  Usable
    as a context manager (symmetry with :class:`SharedOutput`; the pool
    itself holds no persistent resources between :meth:`run` calls —
    worker processes live only for the duration of one chunk attempt).
    """

    def __init__(
        self, n_workers: int | None = None, *, chunks_per_worker: int = 1
    ) -> None:
        if n_workers is None:
            n_workers = multiprocessing.cpu_count()
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        self.n_workers = n_workers
        # Oversplitting factor: >1 shrinks the unit of retried/validated
        # work (the guardian's "halve-chunks" degradation rung) without
        # changing the degree of parallelism.
        self.chunks_per_worker = chunks_per_worker
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._ctx = None

    @property
    def uses_processes(self) -> bool:
        return self._ctx is not None and self.n_workers > 1

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def run(
        self,
        fn: Callable[[tuple[str, int, int]], None],
        shm_name: str,
        n_items: int,
        *,
        tracer: Tracer | NullTracer | None = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        validate: Callable[[int, int], bool] | None = None,
        report: RecoveryReport | None = None,
    ) -> RecoveryReport:
        """Apply ``fn`` to one (shm_name, lo, hi) task per worker, supervised.

        Parameters
        ----------
        fn, shm_name, n_items:
            The chunk function and the shared output block it writes.
            ``fn`` must be idempotent per chunk (write only its own
            [lo, hi) slice) — that is what makes re-execution safe.
        tracer:
            With a tracer attached, the whole map gets a ``"pool_run"``
            span, each completed chunk a ``"pool_chunk"`` child
            (``worker_s`` carries the parent-measured attempt seconds,
            ``attempts`` the 1-based attempt count, ``degraded`` marks
            in-process fallback), and each failed attempt a
            ``"pool_chunk_failure"`` span with its reason.
        policy:
            Retry/backoff/deadline parameters; defaults to
            ``RetryPolicy()``.
        faults:
            Deterministic fault plan applied inside worker processes
            (chaos testing); ignored on the in-process path.
        validate:
            Parent-side output check called as ``validate(lo, hi)`` after
            each attempt; ``False`` marks the attempt failed (counted as
            ``invalid_chunks``) and triggers the retry ladder.
        report:
            Recovery counters to accumulate into; a fresh
            :class:`RecoveryReport` is created (and returned) if omitted.

        Raises
        ------
        ChunkFailureError
            Only when a chunk's output is still invalid after in-process
            fallback — i.e. the failure is deterministic, not worker
            flakiness.
        """
        global _WORKER_METRICS
        tr = as_tracer(tracer)
        pol = policy if policy is not None else RetryPolicy()
        rep = report if report is not None else RecoveryReport()
        tasks = [
            (shm_name, lo, hi)
            for lo, hi in chunk_ranges(
                n_items, self.n_workers * self.chunks_per_worker
            )
            if hi > lo
        ]
        # Chunk functions executed in *this* process (inline mode, or the
        # degraded fallback) record straight into the tracer's registry;
        # forked workers get a fresh registry swapped in by
        # _run_chunk_in_worker and merged back via the metrics queue.
        prev_metrics = _WORKER_METRICS
        _WORKER_METRICS = tr.metrics
        try:
            with tr.span("pool_run") as sp:
                sp.set(
                    items=n_items,
                    n_workers=self.n_workers,
                    n_chunks=len(tasks),
                    mode="processes" if self.uses_processes else "inline",
                )
                if not self.uses_processes:
                    for task in tasks:
                        with tr.span("pool_chunk") as csp:
                            fn(task)
                            csp.set(
                                items=task[2] - task[1],
                                lo=task[1],
                                hi=task[2],
                            )
                        if validate is not None and not validate(
                            task[1], task[2]
                        ):
                            rep.chunk_failures += 1
                            tr.counter("resilience.chunk_failures").inc()
                            raise ChunkFailureError(
                                f"chunk [{task[1]}, {task[2]}) produced "
                                "invalid output in in-process execution"
                            )
                    return rep
                self._run_supervised(fn, tasks, tr, pol, faults, validate, rep)
                sp.set(
                    retries=rep.retries,
                    degraded_chunks=rep.degraded_chunks,
                )
        finally:
            _WORKER_METRICS = prev_metrics
        return rep

    def _run_supervised(
        self,
        fn: Callable[[tuple[str, int, int]], None],
        tasks: list[tuple[str, int, int]],
        tr: Tracer | NullTracer,
        pol: RetryPolicy,
        faults: FaultPlan | None,
        validate: Callable[[int, int], bool] | None,
        rep: RecoveryReport,
    ) -> None:
        assert self._ctx is not None
        waiting: list[_ChunkState] = [
            _ChunkState(k, task) for k, task in enumerate(tasks)
        ]
        # index -> (process, state, deadline, start time); all monotonic.
        running: dict[int, tuple] = {}
        # Worker-side metric snapshots and flight records come home over
        # this queue; only built when someone is listening (tracer
        # attached), so the untraced path pays nothing.
        metrics_queue = self._ctx.SimpleQueue() if tr.enabled else None

        def drain_worker_payloads() -> None:
            if metrics_queue is None:
                return
            while not metrics_queue.empty():
                payload = metrics_queue.get()
                tr.metrics.merge(
                    MetricsRegistry.from_snapshot(payload["metrics"])
                )
                fl = payload.get("flight")
                if fl is not None:
                    # Every flight record doubles as a worker heartbeat
                    # for the live-telemetry sampler — no extra queue
                    # traffic, and the untraced path (no queue) pays
                    # nothing.
                    record_worker_heartbeat(fl["pid"])
                    # The worker's self-measured exec window becomes a
                    # per-worker trace lane (pid = worker process).
                    tr.record_span(
                        "worker_chunk",
                        start_ns=fl["start_ns"],
                        end_ns=fl["end_ns"],
                        pid=fl["pid"],
                        items=fl["hi"] - fl["lo"],
                        lo=fl["lo"],
                        hi=fl["hi"],
                        chunk=fl["chunk"],
                        attempt=fl["attempt"],
                        queue_wait_s=fl["queue_wait_s"],
                    )
                    if fl["queue_wait_s"] is not None:
                        tr.histogram(
                            "pool.queue_wait_ms", _QUEUE_WAIT_MS_EDGES
                        ).observe(fl["queue_wait_s"] * 1e3)

        def finish(st: _ChunkState, elapsed: float, *, degraded: bool) -> None:
            with tr.span("pool_chunk") as csp:
                csp.set(
                    items=st.task[2] - st.task[1],
                    lo=st.task[1],
                    hi=st.task[2],
                    worker_s=elapsed,
                    attempts=st.attempt + 1,
                )
                if degraded:
                    csp.set(degraded=True)

        def fail(st: _ChunkState, reason: str, now: float) -> None:
            with tr.span("pool_chunk_failure", reason=reason) as fsp:
                fsp.set(lo=st.task[1], hi=st.task[2], attempt=st.attempt)
            if st.attempt >= pol.max_retries:
                # Retry budget spent: degrade to in-process execution.
                rep.degraded_chunks += 1
                tr.counter("resilience.degraded_chunks").inc()
                t0 = time.monotonic()
                fn(st.task)
                finish(st, time.monotonic() - t0, degraded=True)
                if validate is not None and not validate(
                    st.task[1], st.task[2]
                ):
                    rep.chunk_failures += 1
                    tr.counter("resilience.chunk_failures").inc()
                    raise ChunkFailureError(
                        f"chunk [{st.task[1]}, {st.task[2]}) still invalid "
                        f"after in-process fallback (last failure: {reason})"
                    )
            else:
                st.attempt += 1
                rep.retries += 1
                tr.counter("resilience.retries").inc()
                st.not_before = now + pol.backoff_s(
                    st.attempt, token=st.index
                )
                waiting.append(st)

        try:
            while waiting or running:
                now = time.monotonic()
                # Launch every backoff-expired chunk into a free slot.
                i = 0
                while i < len(waiting) and len(running) < self.n_workers:
                    st = waiting[i]
                    if st.not_before <= now:
                        waiting.pop(i)
                        proc = self._ctx.Process(
                            target=_run_chunk_in_worker,
                            args=(
                                fn,
                                st.task,
                                st.index,
                                st.attempt,
                                faults,
                                metrics_queue,
                                # Submit stamp for the worker's queue-wait
                                # measurement (same machine-wide clock).
                                time.monotonic_ns(),
                            ),
                            daemon=True,
                        )
                        proc.start()
                        deadline = (
                            now + pol.chunk_timeout_s
                            if pol.chunk_timeout_s is not None
                            else math.inf
                        )
                        running[st.index] = (proc, st, deadline, now)
                    else:
                        i += 1
                if not running:
                    # Everyone is waiting out a backoff.
                    time.sleep(
                        max(0.0, min(s.not_before for s in waiting) - now)
                    )
                    continue

                # Sleep until a worker exits, a deadline passes, or a
                # backoff expires — whichever comes first.
                wake = min(d for (_, _, d, _) in running.values())
                if waiting:
                    wake = min(wake, min(s.not_before for s in waiting))
                timeout = (
                    None if wake == math.inf else max(0.0, wake - now)
                )
                _sentinel_wait(
                    [p.sentinel for (p, _, _, _) in running.values()],
                    timeout=timeout,
                )

                now = time.monotonic()
                for idx, (proc, st, deadline, started) in list(
                    running.items()
                ):
                    if proc.exitcode is not None:
                        del running[idx]
                        elapsed = now - started
                        if proc.exitcode != 0:
                            proc.close()
                            rep.worker_deaths += 1
                            tr.counter("resilience.worker_deaths").inc()
                            fail(st, "worker_death", now)
                        elif validate is not None and not validate(
                            st.task[1], st.task[2]
                        ):
                            proc.close()
                            rep.invalid_chunks += 1
                            tr.counter("resilience.invalid_chunks").inc()
                            fail(st, "invalid_output", now)
                        else:
                            proc.close()
                            finish(st, elapsed, degraded=False)
                    elif now >= deadline:
                        proc.terminate()
                        proc.join()
                        proc.close()
                        del running[idx]
                        rep.chunk_timeouts += 1
                        tr.counter("resilience.chunk_timeouts").inc()
                        fail(st, "timeout", now)
        finally:
            # On any escape (ChunkFailureError, KeyboardInterrupt, ...)
            # leave no orphan workers behind.
            for proc, _, _, _ in running.values():
                proc.terminate()
                proc.join()
                proc.close()
            # Fold whatever the workers managed to record into the parent
            # registry (retried attempts count the work they really did),
            # and land their flight records as worker_chunk lanes.
            drain_worker_payloads()
            if metrics_queue is not None:
                metrics_queue.close()


def parallel_edge_scores(
    graph: CommunityGraph,
    *,
    n_workers: int | None = None,
    backend: "ExecutionBackend | None" = None,
    tracer: Tracer | NullTracer | None = None,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    report: RecoveryReport | None = None,
) -> np.ndarray:
    """Modularity ΔQ scores computed by a supervised pool over shared memory.

    Bit-identical to ``ModularityScorer().score(graph)`` (same arithmetic,
    chunked) even under injected worker faults; the equivalence is
    integration- and chaos-tested.  Chunk outputs are validated for
    NaN/inf parent-side, so corrupted worker output triggers re-execution
    rather than propagating.

    ``backend`` selects the :class:`~repro.parallel.backends.ExecutionBackend`
    the chunks map over; ``None`` keeps the historical behavior of a
    :class:`SharedArrayPool` sized by ``n_workers`` (the two arguments
    are mutually exclusive).
    """
    from repro.core.scoring import validate_scores

    if backend is not None and n_workers is not None:
        raise ValueError("pass either backend or n_workers, not both")

    e = graph.edges
    m = e.n_edges
    w_total = graph.total_weight()
    if m == 0 or w_total == 0:
        return np.zeros(m, dtype=SCORE_DTYPE)

    # Stage worker inputs in module globals; fork inherits them read-only.
    _WORK["ei"] = e.ei
    _WORK["ej"] = e.ej
    _WORK["w"] = e.w
    _WORK["vol"] = graph.strengths()
    _WORK["w_total"] = w_total

    try:
        with SharedOutput(m, SCORE_DTYPE) as out:
            view = out.array()

            def chunk_is_finite(lo: int, hi: int) -> bool:
                return bool(np.isfinite(view[lo:hi]).all())

            if backend is not None:
                backend.map_chunks(
                    _score_chunk,
                    out.name,
                    m,
                    tracer=tracer,
                    policy=policy,
                    faults=faults,
                    validate=chunk_is_finite,
                    report=report,
                )
            else:
                with SharedArrayPool(n_workers) as pool:
                    pool.run(
                        _score_chunk,
                        out.name,
                        m,
                        tracer=tracer,
                        policy=policy,
                        faults=faults,
                        validate=chunk_is_finite,
                        report=report,
                    )
            scores = view.copy()
            del view  # drop the buffer export before the segment is freed
    finally:
        _WORK.clear()
    return validate_scores(scores, scorer="modularity[parallel]")


class ParallelModularityScorer:
    """:class:`~repro.core.scoring.EdgeScorer` backed by the supervised pool.

    Drop this into :func:`repro.core.detect_communities` to run the
    scoring phase of every level across worker processes with the full
    recovery ladder.  Recovery counts accumulate on :attr:`report` across
    levels; the driver folds that report into its result's
    ``recovery`` field.

    Pass the *same* tracer instance given to ``detect_communities`` so
    the ``pool_run`` spans nest under the per-level ``score`` spans.

    Prefer selecting a backend on the run itself
    (``detect_communities(..., backend="process-pool")``) for new code;
    this class remains for callers that configure the scorer directly,
    and accepts an explicit ``backend`` as the modern alternative to
    ``n_workers``.
    """

    name = "modularity"
    validates_output = True

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        backend: "ExecutionBackend | None" = None,
        policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if backend is not None and n_workers is not None:
            raise ValueError("pass either backend or n_workers, not both")
        self.n_workers = n_workers
        self.backend = backend
        self.policy = policy
        self.faults = faults
        self.tracer = tracer
        self.report = RecoveryReport()

    def score(
        self, graph: CommunityGraph, recorder: TraceRecorder | None = None
    ) -> np.ndarray:
        from repro.core.scoring import _record_scoring

        scores = parallel_edge_scores(
            graph,
            n_workers=self.n_workers,
            backend=self.backend,
            tracer=self.tracer,
            policy=self.policy,
            faults=self.faults,
            report=self.report,
        )
        _record_scoring(recorder, graph, self.name)
        return scores
