"""Real-parallel execution helpers.

Python's GIL rules out the paper's shared-memory threading, so this
subpackage provides the two standard workarounds the HPC-Python guides
recommend: vectorized whole-array kernels (see :mod:`repro.parallel.primitives`
and :mod:`repro.parallel.chunks`) and a process pool over shared memory
(:mod:`repro.parallel.pool`) for multi-core machines.
"""

from repro.parallel.chunks import chunk_ranges, balanced_chunks
from repro.parallel.primitives import (
    segmented_max_at,
    segmented_min_at,
    prefix_sum,
)
from repro.parallel.pool import (
    ParallelModularityScorer,
    SharedArrayPool,
    SharedOutput,
    parallel_edge_scores,
)
from repro.parallel.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ShardedBackend,
    as_backend,
    backend_names,
    create_backend,
    register_backend,
)

__all__ = [
    "chunk_ranges",
    "balanced_chunks",
    "segmented_max_at",
    "segmented_min_at",
    "prefix_sum",
    "SharedArrayPool",
    "SharedOutput",
    "parallel_edge_scores",
    "ParallelModularityScorer",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "register_backend",
    "backend_names",
    "create_backend",
    "as_backend",
]
