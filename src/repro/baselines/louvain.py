"""Louvain method (Blondel, Guillaume, Lambiotte, Lefebvre 2008).

Cited by the paper as the related sequential approach "not designed with
parallelism in mind" [17].  Two alternating phases: greedy local vertex
moves to the best neighboring community until modularity stalls, then
aggregation of communities into a coarser graph — repeated until a full
pass produces no improvement.

Serves as the second quality baseline: on social graphs its modularity is
typically on par with or slightly above CNM's and both bound what the
parallel matching-based algorithm should roughly achieve.
"""

from __future__ import annotations

import numpy as np

from repro.core.matching import MatchingResult
from repro.core.contraction import _build_contracted  # shared aggregation path
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.metrics.modularity import modularity
from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE
from repro.util.arrays import renumber_dense
from repro.util.rng import SeedLike, as_generator

__all__ = ["louvain_communities"]


def _local_moving(
    graph: CommunityGraph,
    rng: np.random.Generator,
    max_sweeps: int,
) -> np.ndarray:
    """Phase 1: greedy vertex moves; returns (possibly coarse) labels."""
    n = graph.n_vertices
    w_total = graph.total_weight()
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    if w_total == 0:
        return labels
    csr = CSRAdjacency.from_edgelist(graph.edges)
    strengths = graph.strengths()
    vol = strengths.astype(float).copy()

    order = np.arange(n)
    for _ in range(max_sweeps):
        rng.shuffle(order)
        moved = 0
        for v in order.tolist():
            neigh = csr.neighbors(v)
            if len(neigh) == 0:
                continue
            wgt = csr.neighbor_weights(v)
            c_old = labels[v]
            comms, inv = np.unique(labels[neigh], return_inverse=True)
            w_to = np.bincount(inv, weights=wgt)
            idx_old = np.searchsorted(comms, c_old)
            has_old = idx_old < len(comms) and comms[idx_old] == c_old
            w_old = w_to[idx_old] if has_old else 0.0
            s_v = float(strengths[v])
            vol_old_wo_v = vol[c_old] - s_v
            gains = (w_to - w_old) / w_total - s_v * (
                vol[comms] - vol_old_wo_v
            ) / (2.0 * w_total**2)
            if has_old:
                gains[idx_old] = 0.0
            best = int(np.argmax(gains))
            if gains[best] > 1e-15 and comms[best] != c_old:
                c_new = int(comms[best])
                labels[v] = c_new
                vol[c_old] -= s_v
                vol[c_new] += s_v
                moved += 1
        if moved == 0:
            break
    return labels


def louvain_communities(
    graph: CommunityGraph,
    *,
    max_sweeps: int = 20,
    max_levels: int = 30,
    seed: SeedLike = 0,
) -> tuple[Partition, float]:
    """Run Louvain to convergence; returns ``(partition, modularity)``."""
    rng = as_generator(seed)
    current = graph.copy()
    full_labels = np.arange(graph.n_vertices, dtype=VERTEX_DTYPE)

    for _ in range(max_levels):
        local = _local_moving(current, rng, max_sweeps)
        dense, k = renumber_dense(local)
        if k == current.n_vertices:
            break  # no vertex moved: converged
        current = _build_contracted(current, dense, k)
        full_labels = dense[full_labels]
        if k <= 1:
            break

    partition = Partition.from_labels(full_labels)
    return partition, modularity(graph, partition)
