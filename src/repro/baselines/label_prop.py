"""Asynchronous label propagation (Raghavan, Albert, Kumara 2007).

Not a modularity maximizer — each vertex repeatedly adopts the weighted
majority label of its neighbors.  Included as the cheap linear-time
reference detector: it finds strong planted structure but collapses on
graphs without it (e.g. R-MAT), which mirrors the paper's observation that
R-MAT graphs "are known not to possess significant community structure".
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE
from repro.util.rng import SeedLike, as_generator

__all__ = ["label_propagation_communities"]


def label_propagation_communities(
    graph: CommunityGraph,
    *,
    max_sweeps: int = 50,
    seed: SeedLike = 0,
) -> Partition:
    """Run asynchronous weighted label propagation until stable.

    Ties are broken toward the smallest label for determinism given a
    seed; sweep order is shuffled each round, as the original algorithm
    prescribes.
    """
    n = graph.n_vertices
    labels = np.arange(n, dtype=VERTEX_DTYPE)
    if n == 0 or graph.n_edges == 0:
        return Partition.from_labels(labels)
    csr = CSRAdjacency.from_edgelist(graph.edges)
    rng = as_generator(seed)

    order = np.arange(n)
    for _ in range(max_sweeps):
        rng.shuffle(order)
        changed = 0
        for v in order.tolist():
            neigh = csr.neighbors(v)
            if len(neigh) == 0:
                continue
            wgt = csr.neighbor_weights(v)
            cand, inv = np.unique(labels[neigh], return_inverse=True)
            totals = np.bincount(inv, weights=wgt)
            # Highest total weight; ties to the smallest label (np.argmax
            # returns the first maximum and cand is sorted).
            best = cand[int(np.argmax(totals))]
            if best != labels[v]:
                labels[v] = best
                changed += 1
        if changed == 0:
            break
    return Partition.from_labels(labels)
