"""Sequential baseline community detectors.

The paper sanity-checks its modularities against a sequential SNAP
implementation; these baselines play that role here: CNM (the classic
priority-queue agglomerative maximizer the paper's §II contrasts with),
Louvain (Blondel et al., cited as related work [17]) and label
propagation (a cheap non-modularity reference).
"""

from repro.baselines.cnm import cnm_communities
from repro.baselines.louvain import louvain_communities
from repro.baselines.label_prop import label_propagation_communities

__all__ = [
    "cnm_communities",
    "louvain_communities",
    "label_propagation_communities",
]
