"""Clauset–Newman–Moore greedy modularity agglomeration.

The sequential algorithm the paper's §II describes as "prior
modularity-maximizing algorithms sequentially maintain and update priority
queues" — the exact design the parallel matching replaces.  One merge per
step: always the globally best ΔQ pair, via a lazy-deletion binary heap.

This is the quality baseline: because it always takes the single best
merge, its modularity is a (usually slightly higher) reference point for
the parallel algorithm, which merges many good-but-not-best pairs at
once.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE

__all__ = ["cnm_communities"]


def cnm_communities(
    graph: CommunityGraph,
    *,
    min_communities: int = 1,
) -> tuple[Partition, float]:
    """Run CNM to its modularity maximum.

    Returns ``(partition, modularity)``.  Stops when no merge has positive
    ΔQ or ``min_communities`` is reached.
    """
    n = graph.n_vertices
    w_total = graph.total_weight()
    if n == 0:
        return Partition(np.empty(0, dtype=VERTEX_DTYPE)), 0.0

    # Community adjacency as dict-of-dicts; parent array for union tracking.
    adj: list[dict[int, float]] = [dict() for _ in range(n)]
    e = graph.edges
    for i, j, w in zip(e.ei.tolist(), e.ej.tolist(), e.w.tolist()):
        adj[i][j] = adj[i].get(j, 0.0) + w
        adj[j][i] = adj[j].get(i, 0.0) + w

    vol = graph.strengths().astype(float)
    internal = graph.self_weights.astype(float).copy()
    alive = np.ones(n, dtype=bool)
    parent = np.arange(n, dtype=VERTEX_DTYPE)
    n_alive = n

    if w_total == 0:
        return Partition.singletons(n), 0.0

    def delta_q(i: int, j: int, w: float) -> float:
        return w / w_total - vol[i] * vol[j] / (2.0 * w_total**2)

    heap: list[tuple[float, int, int, float]] = []
    for i in range(n):
        for j, w in adj[i].items():
            if i < j:
                heapq.heappush(heap, (-delta_q(i, j, w), i, j, w))

    while heap and n_alive > min_communities:
        neg_dq, i, j, w = heapq.heappop(heap)
        if -neg_dq <= 0:
            break
        # Lazy deletion: skip stale entries (dead endpoint or changed weight).
        if not (alive[i] and alive[j]):
            continue
        if adj[i].get(j) != w:
            continue
        if -neg_dq != delta_q(i, j, w):
            continue

        # Merge j into i.
        alive[j] = False
        parent[j] = i
        n_alive -= 1
        internal[i] += internal[j] + w
        vol[i] += vol[j]
        del adj[i][j]
        del adj[j][i]
        for k, wk in adj[j].items():
            if k == i:
                continue
            new_w = adj[i].get(k, 0.0) + wk
            adj[i][k] = new_w
            adj[k][i] = new_w
            del adj[k][j]
            heapq.heappush(heap, (-delta_q(i, k, new_w), i, k, new_w))
        adj[j].clear()
        # Re-push i's surviving pairs with updated volumes.
        for k, wk in adj[i].items():
            heapq.heappush(heap, (-delta_q(i, k, wk), i, k, wk))

    # Flatten the parent forest.
    labels = parent.copy()
    while True:
        nxt = labels[labels]
        if np.array_equal(nxt, labels):
            break
        labels = nxt
    partition = Partition.from_labels(labels)

    alive_idx = np.flatnonzero(alive)
    q = float(
        (
            internal[alive_idx] / w_total
            - (vol[alive_idx] / (2.0 * w_total)) ** 2
        ).sum()
    )
    return partition, q
