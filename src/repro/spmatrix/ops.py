"""Graph algorithms as sparse-matrix expressions (§VI).

* ``adjacency_matrix`` — the community graph as a symmetric CSR matrix
  whose diagonal carries twice the self weights (the modularity volume
  convention).
* ``selector_matrix`` — the ``|V| × k`` 0/1 matrix ``S`` with
  ``S[v, mapping[v]] = 1``.
* ``contract_via_spgemm`` — contraction as the triple product
  ``Sᵀ A S`` followed by splitting the diagonal back into self weights.
  Produces *identical* results to the bucket-sort contraction (tested).
* ``matrix_modularity`` — modularity as
  ``sum(diag(C))/(2W) - ||C·1||² / (2W)²`` over the contracted matrix.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList, parity_canonical
from repro.graph.graph import CommunityGraph
from repro.spmatrix.csr import CSRMatrix, spgemm
from repro.types import VERTEX_DTYPE
from repro.util.arrays import segment_starts

__all__ = [
    "adjacency_matrix",
    "selector_matrix",
    "contract_via_spgemm",
    "matrix_modularity",
]


def adjacency_matrix(graph: CommunityGraph) -> CSRMatrix:
    """Symmetric weighted adjacency with ``diag = 2 * self_weights``.

    With this convention the row sums equal the community volumes
    (strengths) and the total matrix sum is ``2W``.
    """
    e = graph.edges
    n = graph.n_vertices
    rows = np.concatenate([e.ei, e.ej, np.arange(n, dtype=VERTEX_DTYPE)])
    cols = np.concatenate([e.ej, e.ei, np.arange(n, dtype=VERTEX_DTYPE)])
    vals = np.concatenate([e.w, e.w, 2.0 * graph.self_weights])
    mat = CSRMatrix.from_triplets(rows, cols, vals, (n, n))
    # Drop explicit zeros introduced by zero self weights.
    return _drop_zeros(mat)


def _drop_zeros(mat: CSRMatrix) -> CSRMatrix:
    keep = mat.data != 0.0
    if keep.all():
        return mat
    rows, cols, vals = mat.to_triplets()
    return CSRMatrix.from_triplets(
        rows[keep], cols[keep], vals[keep], mat.shape
    )


def selector_matrix(mapping: np.ndarray, k: int) -> CSRMatrix:
    """The 0/1 community-selector ``S`` with ``S[v, mapping[v]] = 1``."""
    mapping = np.asarray(mapping, dtype=np.int64)
    n = len(mapping)
    if len(mapping) and (mapping.min() < 0 or mapping.max() >= k):
        raise ValueError("mapping entry out of range")
    return CSRMatrix(
        n,
        k,
        np.arange(n + 1, dtype=np.int64),
        mapping.copy(),
        np.ones(n),
    )


def contract_via_spgemm(
    graph: CommunityGraph, mapping: np.ndarray, k: int
) -> CommunityGraph:
    """Contraction as ``Sᵀ A S`` — the Combinatorial-BLAS formulation.

    The result is representation-identical to
    :func:`repro.core.contraction.contract`'s output for the same map:
    off-diagonal entries become parity-hashed bucketed edges, half the
    diagonal becomes the self-weight array.
    """
    a = adjacency_matrix(graph)
    s = selector_matrix(mapping, k)
    coarse = spgemm(spgemm(s.transpose(), a), s)

    rows, cols, vals = coarse.to_triplets()
    diag_mask = rows == cols
    new_self = np.zeros(k)
    new_self[rows[diag_mask]] = vals[diag_mask] / 2.0

    # Each off-diagonal edge appears twice (symmetric); keep one copy.
    off = ~diag_mask & (rows < cols)
    first, second = parity_canonical(
        rows[off].astype(VERTEX_DTYPE), cols[off].astype(VERTEX_DTYPE)
    )
    w = vals[off]
    order = np.lexsort((second, first))
    first, second, w = first[order], second[order], w[order]
    if len(first):
        starts = segment_starts(first * np.int64(k) + second)
        w = np.add.reduceat(w, starts)
        first = first[starts]
        second = second[starts]
    edges = EdgeList._from_grouped(first, second, w, k)
    return CommunityGraph(edges, new_self)


def matrix_modularity(graph: CommunityGraph, mapping: np.ndarray, k: int) -> float:
    """Modularity of the partition ``mapping`` as a matrix expression.

    ``Q = tr(Sᵀ A S)/(2W) − ‖(Sᵀ A S)·1‖² / (2W)²`` with ``A`` including
    the doubled self-loop diagonal.
    """
    a = adjacency_matrix(graph)
    s = selector_matrix(mapping, k)
    coarse = spgemm(spgemm(s.transpose(), a), s)
    two_w = float(a.data.sum())
    if two_w == 0:
        return 0.0
    internal = float(coarse.diagonal().sum())
    volumes = coarse.matvec(np.ones(k))
    return internal / two_w - float((volumes**2).sum()) / two_w**2
