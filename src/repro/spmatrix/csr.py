"""A from-scratch CSR sparse-matrix kernel library.

Implements exactly the operations the §VI sparse formulation needs —
construction from triplets, transpose, diagonal extraction, SpGEMM —
with fully vectorized NumPy (the expand/sort/accumulate SpGEMM is the
classic ESC formulation used by GPU and CombBLAS back ends).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.arrays import segment_starts

__all__ = ["CSRMatrix", "spgemm"]


@dataclass
class CSRMatrix:
    """Compressed sparse row matrix with float64 values.

    Invariants: ``indptr`` has length ``n_rows + 1``; column indices are
    strictly increasing within each row (entries coalesced).
    """

    n_rows: int
    n_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    # ------------------------------------------------------------- build
    @classmethod
    def from_triplets(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        shape: tuple[int, int],
    ) -> "CSRMatrix":
        """Build from COO triplets, accumulating duplicates."""
        n_rows, n_cols = shape
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("triplet arrays must have equal length")
        if len(rows) and (
            rows.min() < 0
            or cols.min() < 0
            or rows.max() >= n_rows
            or cols.max() >= n_cols
        ):
            raise ValueError("triplet index out of range")

        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if len(rows):
            starts = segment_starts(rows * np.int64(n_cols) + cols)
            vals = np.add.reduceat(vals, starts)
            rows = rows[starts]
            cols = cols[starts]
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n_rows, n_cols, indptr, cols, vals)

    @classmethod
    def identity(cls, n: int) -> "CSRMatrix":
        return cls(
            n,
            n,
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n),
        )

    # ----------------------------------------------------------- queries
    @property
    def nnz(self) -> int:
        return len(self.indices)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i``."""
        sl = slice(self.indptr[i], self.indptr[i + 1])
        return self.indices[sl], self.data[sl]

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def diagonal(self) -> np.ndarray:
        """Dense main diagonal."""
        diag = np.zeros(min(self.n_rows, self.n_cols))
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        hits = rows == self.indices
        diag_rows = rows[hits]
        keep = diag_rows < len(diag)
        diag[diag_rows[keep]] = self.data[hits][keep]
        return diag

    def to_dense(self) -> np.ndarray:
        """Dense ndarray (testing / tiny matrices only)."""
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        out[rows, self.indices] = self.data
        return out

    def to_triplets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        return rows, self.indices.copy(), self.data.copy()

    # -------------------------------------------------------- operations
    def transpose(self) -> "CSRMatrix":
        rows, cols, vals = self.to_triplets()
        return CSRMatrix.from_triplets(
            cols, rows, vals, (self.n_cols, self.n_rows)
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix–dense vector product."""
        x = np.asarray(x, dtype=np.float64)
        if len(x) != self.n_cols:
            raise ValueError("dimension mismatch")
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        return np.bincount(
            rows, weights=self.data * x[self.indices], minlength=self.n_rows
        )

    def scale_rows(self, s: np.ndarray) -> "CSRMatrix":
        """Return diag(s) @ A."""
        if len(s) != self.n_rows:
            raise ValueError("dimension mismatch")
        rows = np.repeat(np.arange(self.n_rows), self.row_lengths())
        return CSRMatrix(
            self.n_rows,
            self.n_cols,
            self.indptr.copy(),
            self.indices.copy(),
            self.data * np.asarray(s, dtype=np.float64)[rows],
        )


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Sparse general matrix–matrix multiply, ``C = A @ B``.

    Expand–sort–compress (ESC) formulation: every nonzero ``A[i, k]``
    pairs with every nonzero of row ``k`` of ``B``; the expanded triplets
    are coalesced by the CSR builder.  Fully vectorized — the expansion
    index arithmetic is the standard segmented-gather trick.
    """
    if a.n_cols != b.n_rows:
        raise ValueError(
            f"dimension mismatch: {a.shape} @ {b.shape}"
        )
    if a.nnz == 0 or b.nnz == 0:
        return CSRMatrix.from_triplets(
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            (a.n_rows, b.n_cols),
        )

    a_rows = np.repeat(np.arange(a.n_rows), a.row_lengths())
    k = a.indices  # middle index per A-nonzero
    seg_len = (b.indptr[k + 1] - b.indptr[k]).astype(np.int64)
    total = int(seg_len.sum())
    if total == 0:
        return CSRMatrix.from_triplets(
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0),
            (a.n_rows, b.n_cols),
        )
    seg_id = np.repeat(np.arange(len(seg_len)), seg_len)
    seg_base = np.cumsum(seg_len) - seg_len
    within = np.arange(total) - seg_base[seg_id]
    b_pos = b.indptr[k[seg_id]] + within

    rows = a_rows[seg_id]
    cols = b.indices[b_pos]
    vals = a.data[seg_id] * b.data[b_pos]
    return CSRMatrix.from_triplets(rows, cols, vals, (a.n_rows, b.n_cols))
