"""Checksummed spill containers: the on-disk format of the out-of-core path.

A *spill file* holds one or more named numpy arrays behind a
checksummed header, written atomically and reopened as zero-copy
``np.memmap`` views.  It is the storage layer under
:class:`repro.graph.csr.ShardedCSRStore` and the sharded execution
backend — everything the engine spills when a memory budget forces it
out of core.

Layout (all little-endian)::

    offset 0   magic            8 bytes   b"RSPILL1\\n"
    offset 8   header length    4 bytes   uint32, JSON byte count
    offset 12  header JSON      variable  {"version", "arrays": [...]}
    ...        payload          each array at its 64-byte-aligned offset

The header's ``arrays`` entries carry ``name``/``dtype``/``shape``/
``offset`` (relative to the payload start)/``nbytes``/``crc32``.  On
open the magic, header, file size, and every array's CRC-32 are
verified before any view is handed out; any mismatch — bad magic, torn
payload, bit rot — raises :class:`~repro.errors.SpillError`.  Combined
with the atomic write (:mod:`repro.util.atomicio`) this means a reader
either gets the exact arrays that were written or a loud error, never
silently truncated data.

The writer consults a :class:`~repro.resilience.FaultPlan` for disk
faults (``enospc``, ``torn_write``) so the chaos suite can exercise
both failure edges deterministically.
"""

from __future__ import annotations

import errno
import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.errors import SpillError
from repro.util.atomicio import atomic_write

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.faults import FaultPlan

__all__ = [
    "SPILL_MAGIC",
    "SPILL_VERSION",
    "write_spill",
    "read_spill",
    "spill_nbytes",
    "scratch_memmap",
]

SPILL_MAGIC = b"RSPILL1\n"
SPILL_VERSION = 1

#: Payload arrays start on this alignment so memmap views are
#: cache-line aligned regardless of header length.
_ALIGN = 64

_HEADER_FIXED = len(SPILL_MAGIC) + 4  # magic + uint32 header length


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def write_spill(
    path: str | os.PathLike,
    arrays: Mapping[str, np.ndarray],
    *,
    faults: "FaultPlan | None" = None,
    artifact: str = "spill",
    index: int = 0,
) -> int:
    """Atomically write named arrays as one checksummed spill file.

    Returns the file's total byte size.  ``faults`` hooks the chaos
    suite's disk faults: an ``enospc`` plan entry for ``(artifact,
    index)`` raises ``OSError(ENOSPC)`` before any byte lands, a
    ``torn_write`` entry truncates the file *after* the atomic rename
    (modeling at-rest corruption the checksum must catch).
    """
    if not arrays:
        raise ValueError("write_spill needs at least one array")
    fault = faults.decide_disk(artifact, index) if faults is not None else None
    if fault is not None and fault.kind == "enospc":
        raise OSError(
            errno.ENOSPC, f"injected ENOSPC for {artifact}[{index}]", str(path)
        )

    contiguous = {
        name: np.ascontiguousarray(arr) for name, arr in arrays.items()
    }
    entries = []
    # Two-pass header sizing: entry offsets depend on the payload start,
    # which depends on the header length, which depends on the entries.
    # Offsets are relative to the payload start, so one pass computes
    # them and a second serializes the now-stable header.
    offset = 0
    for name, arr in contiguous.items():
        offset = _align(offset)
        entries.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
                "crc32": zlib.crc32(arr.view(np.uint8).reshape(-1)) & 0xFFFFFFFF,
            }
        )
        offset += arr.nbytes
    header = json.dumps(
        {"version": SPILL_VERSION, "arrays": entries}, sort_keys=True
    ).encode("utf-8")
    payload_start = _align(_HEADER_FIXED + len(header))
    total = payload_start + offset

    with atomic_write(path, mode="wb") as fh:
        fh.write(SPILL_MAGIC)
        fh.write(np.uint32(len(header)).tobytes())
        fh.write(header)
        pos = _HEADER_FIXED + len(header)
        for entry, arr in zip(entries, contiguous.values()):
            start = payload_start + entry["offset"]
            fh.write(b"\0" * (start - pos))
            fh.write(memoryview(arr).cast("B"))
            pos = start + arr.nbytes

    if fault is not None and fault.kind == "torn_write":
        from repro.resilience.faults import truncate_file

        truncate_file(path, keep_fraction=fault.keep_fraction)
    return total


def _read_header(path: Path) -> tuple[dict, int]:
    """Parse and sanity-check the header; returns (header, payload_start)."""
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            magic = fh.read(len(SPILL_MAGIC))
            if magic != SPILL_MAGIC:
                raise SpillError(f"{path}: not a spill file (bad magic)")
            raw_len = fh.read(4)
            if len(raw_len) < 4:
                raise SpillError(f"{path}: truncated spill header")
            header_len = int(np.frombuffer(raw_len, dtype=np.uint32)[0])
            raw = fh.read(header_len)
            if len(raw) < header_len:
                raise SpillError(f"{path}: truncated spill header")
    except OSError as exc:
        raise SpillError(f"{path}: cannot read spill file: {exc}") from exc
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SpillError(f"{path}: corrupt spill header: {exc}") from exc
    if header.get("version") != SPILL_VERSION:
        raise SpillError(
            f"{path}: unsupported spill version {header.get('version')!r}"
        )
    payload_start = _align(_HEADER_FIXED + header_len)
    for entry in header.get("arrays", []):
        end = payload_start + entry["offset"] + entry["nbytes"]
        if end > size:
            raise SpillError(
                f"{path}: torn spill file — array {entry['name']!r} needs "
                f"{end} bytes, file has {size}"
            )
    return header, payload_start


def read_spill(
    path: str | os.PathLike,
    *,
    verify: bool = True,
    writable: bool = False,
) -> dict[str, np.ndarray]:
    """Reopen a spill file as named ``np.memmap`` views.

    With ``verify=True`` (the default) every array's CRC-32 is
    recomputed — one streaming pass through the page cache — before any
    view is returned; a mismatch raises
    :class:`~repro.errors.SpillError`.  ``writable=False`` maps
    copy-on-write (``mode="c"``): in-place mutation stays private to
    this process and never dirties the spill file.
    """
    p = Path(os.fspath(path))
    header, payload_start = _read_header(p)
    out: dict[str, np.ndarray] = {}
    mode = "r+" if writable else "c"
    for entry in header.get("arrays", []):
        view = np.memmap(
            p,
            dtype=np.dtype(entry["dtype"]),
            mode=mode,
            offset=payload_start + entry["offset"],
            shape=tuple(entry["shape"]),
        )
        if verify:
            crc = zlib.crc32(view.reshape(-1).view(np.uint8)) & 0xFFFFFFFF
            if crc != entry["crc32"]:
                raise SpillError(
                    f"{p}: checksum mismatch on array {entry['name']!r} "
                    f"(stored {entry['crc32']:#010x}, computed {crc:#010x})"
                )
        out[entry["name"]] = view
    return out


def spill_nbytes(path: str | os.PathLike) -> int:
    """Total payload bytes recorded in a spill file's header."""
    header, _ = _read_header(Path(os.fspath(path)))
    return sum(e["nbytes"] for e in header.get("arrays", []))


def scratch_memmap(
    path: str | os.PathLike, *, dtype, shape: tuple[int, ...]
) -> np.ndarray:
    """A writable file-backed scratch array (plain ``.npy``, no checksum).

    For intra-level temporaries (streamed scores, relabel buffers) that
    live and die inside one phase: they need file backing so the pages
    are evictable, not durability — a crash simply recomputes them.
    """
    return np.lib.format.open_memmap(
        os.fspath(path), mode="w+", dtype=dtype, shape=shape
    )
