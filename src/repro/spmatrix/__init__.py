"""Sparse-matrix formulation of the algorithm's primitives (§VI).

The paper closes: "Much of the algorithm can be expressed through sparse
matrix operations, which may lead to explicitly distributed memory
implementations through the Combinatorial BLAS."  This subpackage makes
that concrete: a small CSR matrix kernel library (built from scratch, no
scipy), the contraction expressed as the triple product ``Sᵀ A S`` with a
selector matrix ``S``, and modularity as a matrix expression.  The
equivalence with the bucket-sort contraction is property-tested.
"""

from repro.spmatrix.csr import CSRMatrix, spgemm
from repro.spmatrix.ops import (
    adjacency_matrix,
    selector_matrix,
    contract_via_spgemm,
    matrix_modularity,
)
from repro.spmatrix.spill import (
    read_spill,
    scratch_memmap,
    spill_nbytes,
    write_spill,
)

__all__ = [
    "CSRMatrix",
    "spgemm",
    "read_spill",
    "scratch_memmap",
    "spill_nbytes",
    "write_spill",
    "adjacency_matrix",
    "selector_matrix",
    "contract_via_spgemm",
    "matrix_modularity",
]
