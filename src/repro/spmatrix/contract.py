"""Contraction as a registry kernel over the §VI sparse-matrix layer.

:func:`contract_spmatrix` adapts :func:`repro.spmatrix.ops.contract_via_spgemm`
— the Combinatorial-BLAS triple product ``Pᵀ A P`` over the repo's own
CSR kernels — to the standard contractor signature
(:func:`repro.core.contraction.contract`), so ``contractor="spmatrix"``
is selectable anywhere a kernel name is accepted and the per-level
auto-tuner can weigh it against ``bucket``/``chains``/``shard``.

Output is identical to the bucket-sort contraction: the off-diagonal of
the coarse matrix re-buckets to the same parity-canonical edge list and
half its diagonal is the self-weight array.  On the integer-weight
community graphs the pipeline produces (edge weights count collapsed
input edges) every accumulated sum is exact, so the result is
bit-identical — ``tests/test_engine_parity.py`` runs the full
matcher × scorer sweep over this contractor to enforce it.

What differs is the execution profile: spgemm does two sparse products
whose row merges touch each edge twice more than the fused
lexsort+reduceat, which is exactly the trade the §VI discussion makes
(reuse a tuned SpGEMM instead of a bespoke bucket sort).  The recorded
:class:`~repro.platform.kernels.KernelRecord` stream reflects that.
"""

from __future__ import annotations

import numpy as np

from repro.core.contraction import _mapping_from_matching
from repro.core.matching import MatchingResult
from repro.graph.graph import CommunityGraph
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.platform.kernels import KernelRecord, TraceRecorder
from repro.spmatrix.ops import contract_via_spgemm

__all__ = ["contract_spmatrix"]


def contract_spmatrix(
    graph: CommunityGraph,
    matching: MatchingResult,
    recorder: TraceRecorder | None = None,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> tuple[CommunityGraph, np.ndarray]:
    """Sparse-matrix-product contraction (``Pᵀ A P``), registry signature.

    Derives the old→new community map from ``matching`` exactly like the
    bucket-sort contractor, then hands it to the spgemm formulation.
    Returns ``(new_graph, mapping)``.
    """
    tr = as_tracer(tracer)
    with tr.span("contract_map") as sp:
        mapping, k = _mapping_from_matching(graph, matching)
        sp.set(items=graph.n_vertices, n_communities=k)

    with tr.span("contract_spgemm") as sp:
        new_graph = contract_via_spgemm(graph, mapping, k)
        sp.set(
            items=graph.n_edges,
            n_vertices_after=new_graph.n_vertices,
            n_edges_after=new_graph.n_edges,
        )

    if recorder is not None:
        m = graph.n_edges
        n = graph.n_vertices
        # Building A (symmetric expansion + diagonal) and P: one pass
        # over the doubled edge list.
        recorder.record(
            KernelRecord(
                name="contract_relabel", items=2 * m + n, mem_words=6 * m + 2 * n
            )
        )
        # Two sparse products: Pᵀ(A P).  A P gathers each stored entry
        # once through the map; the outer product merges sorted rows —
        # the row-merge traffic is the spgemm analogue of the bucket
        # sort's in-bucket ordering work.
        recorder.record(
            KernelRecord(
                name="contract_spgemm",
                items=2 * m + n,
                mem_words=16 * m + 4 * n,
            )
        )
        # Split the coarse matrix back into (edges, self weights).
        recorder.record(
            KernelRecord(
                name="contract_copy",
                items=new_graph.n_edges,
                mem_words=4 * new_graph.n_edges,
            )
        )
    return new_graph, mapping
