"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphFormatWarning",
    "GuardianBreach",
    "InvariantViolation",
    "ScoreValidationError",
    "ConvergenceError",
    "PlatformModelError",
    "CheckpointError",
    "SpillError",
    "WalError",
    "StreamStateError",
    "ChunkFailureError",
    "RunAbortedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph file or in-memory representation is malformed."""


class GraphFormatWarning(UserWarning):
    """Malformed input lines were skipped in non-strict parsing mode.

    Emitted once per file with the count of skipped lines, so lossy loads
    are visible without aborting the run.
    """


class InvariantViolation(ReproError):
    """An internal data-structure invariant was violated.

    Raised by the validation helpers (e.g. :func:`repro.graph.validate`)
    when a representation check fails; indicates a library bug or direct
    mutation of internal arrays by the caller.
    """


class ScoreValidationError(InvariantViolation):
    """An edge scorer produced non-finite (NaN/inf) scores.

    Scorer outputs must be finite; the only legitimate non-finite score is
    the ``-inf`` veto the driver applies *after* scoring (the
    ``max_community_size`` constraint).  NaN scores silently break the
    matching's total order, so they are rejected at the source.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its pass budget."""


class PlatformModelError(ReproError):
    """A platform/machine model was misconfigured or queried out of range."""


class CheckpointError(ReproError):
    """A run checkpoint is missing, truncated, or fails validation.

    Raised by :mod:`repro.resilience.checkpoint` when a specific checkpoint
    cannot be loaded; ``load_latest`` catches it per-file and falls back to
    the newest checkpoint that *does* validate.
    """


class SpillError(ReproError):
    """An out-of-core spill file is missing, truncated, or corrupt.

    Raised by :mod:`repro.spmatrix.spill` when a spill container fails
    its checksummed-header validation (bad magic, short payload, CRC
    mismatch) and by :class:`repro.graph.csr.ShardedCSRStore` when a
    spilled graph cannot be reopened.  A spilled run surfaces this
    instead of ever returning results computed from torn shard data.
    """


class WalError(ReproError):
    """A write-ahead-log segment is malformed beyond safe recovery.

    Raised by :mod:`repro.stream.wal` when the log *as a whole* cannot
    be trusted — a sequence-number regression across segments, an
    unwritable directory, an append against a sealed log.  Torn tails
    and bit-flipped records are *not* this error: recovery truncates
    and quarantines those silently (they are expected crash debris) and
    reports them in :class:`~repro.stream.wal.WalRecovery`.
    """


class StreamStateError(ReproError):
    """The streaming service's durable state is unusable.

    Raised by :class:`repro.stream.service.DetectionService` when
    recovery cannot produce a consistent state — e.g. every snapshot is
    corrupt *and* the WAL no longer reaches back to sequence zero, so
    replaying the surviving tail would apply deltas against the wrong
    base.  Fail-stop beats silently serving a wrong partition.
    """


class ChunkFailureError(ReproError):
    """A pool chunk failed even after retries and in-process fallback.

    This is the unrecoverable end of the :class:`repro.resilience.RetryPolicy`
    escalation ladder; seeing it means the failure is deterministic in the
    chunk itself (bad input, bug), not worker-process flakiness.  Each
    escalation to this error is counted in
    :attr:`repro.resilience.RecoveryReport.chunk_failures`.
    """


class GuardianBreach(UserWarning):
    """A run-guardian watchdog threshold was breached and absorbed.

    Emitted by :class:`repro.resilience.RunGuardian` when a phase
    deadline, matching-stall, or memory-budget breach triggers a rung of
    the degradation ladder instead of an abort — the run continues in a
    degraded mode, and this warning (plus the
    :attr:`~repro.resilience.RecoveryReport.ladder` record and the
    ``guardian.*`` metrics) is how the degradation stays visible.
    """


class RunAbortedError(ReproError):
    """The run guardian exhausted its degradation ladder and stopped the run.

    Raised only after every softer rung (backend downgrade, chunk
    halving, audit lowering) has been spent; the engine writes a final
    checkpoint first when a checkpoint directory is configured, so the
    run is resumable.  Attributes ``reason`` (the breach that spent the
    last rung), ``checkpoint_path`` (the final checkpoint, or ``None``),
    and ``report`` (the run's :class:`~repro.resilience.RecoveryReport`)
    carry the forensics.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "",
        checkpoint_path=None,
        report=None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.checkpoint_path = checkpoint_path
        self.report = report
