"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate normally.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "InvariantViolation",
    "ConvergenceError",
    "PlatformModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """A graph file or in-memory representation is malformed."""


class InvariantViolation(ReproError):
    """An internal data-structure invariant was violated.

    Raised by the validation helpers (e.g. :func:`repro.graph.validate`)
    when a representation check fails; indicates a library bug or direct
    mutation of internal arrays by the caller.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its pass budget."""


class PlatformModelError(ReproError):
    """A platform/machine model was misconfigured or queried out of range."""
