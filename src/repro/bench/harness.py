"""Experiment harness: run the algorithm once with tracing, then sweep the
trace over platforms and processor counts.

This mirrors the paper's methodology: one community-detection execution
per (graph, kernel-variant) produces the work profile; the platform cost
model evaluates that profile at every allocation point, three seeded runs
per point (§V: "each experiment is run three times").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.agglomeration import AgglomerationResult, detect_communities
from repro.core.scoring import EdgeScorer
from repro.core.termination import TerminationCriteria
from repro.core.tuner import SelectorPolicy
from repro.graph.graph import CommunityGraph
from repro.obs.memprof import NullMemoryProfiler, PhaseMemoryProfiler
from repro.obs.sinks import phase_totals
from repro.obs.telemetry import NullTelemetry, TelemetrySampler
from repro.obs.timeline import NullTimeline, QualityTimeline
from repro.obs.trace import NullTracer, Tracer, as_tracer
from repro.parallel.backends import ExecutionBackend, as_backend
from repro.platform.kernels import TraceRecorder
from repro.platform.machine import MachineModel
from repro.platform.sim import simulate_sweep, simulate_time
from repro.resilience.guardian import NullGuardian, RunGuardian
from repro.util.rng import SeedLike

__all__ = [
    "TracedRun",
    "run_with_trace",
    "ScalingResult",
    "scaling_experiment",
    "peak_rate",
]


@dataclass
class TracedRun:
    """A community-detection run plus its recorded execution trace(s).

    ``recorder`` holds the *simulated* work profile used by the platform
    cost models; ``tracer``, when attached, holds the *real* wall-clock
    spans of the same run (see :mod:`repro.obs`).
    """

    graph_name: str
    n_vertices: int
    n_edges: int
    result: AgglomerationResult
    recorder: TraceRecorder
    tracer: Tracer | NullTracer | None = None
    timeline: QualityTimeline | NullTimeline | None = None

    def phase_breakdown(self) -> dict[str, float] | None:
        """Measured seconds per pipeline phase for this run's spans.

        ``{"score": s, "match": s, "contract": s, "total": s,
        "contract_share": fraction}``, or ``None`` when the run was not
        wall-clock traced.  This is the ``phases`` block benchmark JSON
        reports carry.
        """
        if self.tracer is None or not self.tracer.enabled:
            return None
        # Phase spans don't carry the graph attr themselves; select the
        # subtree under this run's "run" root span.
        run_roots = [
            s
            for s in self.tracer.find("run")
            if s.attrs.get("graph") == self.graph_name
        ]
        if not run_roots:
            return phase_totals(list(self.tracer.spans))
        by_id = {s.span_id: s for s in self.tracer.spans}
        root_ids = {s.span_id for s in run_roots}

        def in_run(s) -> bool:
            cur = s
            while cur is not None:
                if cur.span_id in root_ids:
                    return True
                cur = (
                    by_id.get(cur.parent_id)
                    if cur.parent_id is not None
                    else None
                )
            return False

        return phase_totals([s for s in self.tracer.spans if in_run(s)])


def run_with_trace(
    graph: CommunityGraph,
    *,
    graph_name: str = "graph",
    scorer: EdgeScorer | None = None,
    termination: TerminationCriteria | None = None,
    matcher: str = "worklist",
    contractor: str = "bucket",
    selector: "SelectorPolicy | None" = None,
    tracer: Tracer | NullTracer | None = None,
    timeline: QualityTimeline | NullTimeline | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    backend: "ExecutionBackend | str | None" = None,
    guardian: "RunGuardian | NullGuardian | None" = None,
    telemetry: "TelemetrySampler | NullTelemetry | None" = None,
    memprof: "PhaseMemoryProfiler | NullMemoryProfiler | None" = None,
) -> TracedRun:
    """Run detection with a fresh recorder (and optional tracer) attached.

    The wall-clock spans are rooted under a ``"run"`` span stamped with
    the graph name so several runs can share one tracer (the bench
    exhibits sweep multiple graphs).  A ``timeline`` records the
    per-level quality trajectory for the benchmark ledger (see
    :mod:`repro.bench.ledger`).  ``checkpoint_dir``/``resume`` pass
    straight through to :func:`~repro.core.agglomeration.detect_communities`
    so long benchmark runs survive interruption (see docs/RESILIENCE.md).
    ``backend`` selects the execution backend by name or instance (see
    docs/ARCHITECTURE.md); the run span records which backend ran.
    ``guardian`` attaches a :class:`~repro.resilience.RunGuardian`
    supervising the run (watchdog, invariant audits, degradation
    ladder) — its recovery accounting lands on the result and hence the
    benchmark ledger.  ``telemetry``/``memprof`` attach the
    live-telemetry sampler and the phase memory attributor (the caller
    owns their start/stop lifecycle; see :mod:`repro.obs.telemetry` and
    :mod:`repro.obs.memprof`).
    """
    recorder = TraceRecorder()
    tr = as_tracer(tracer)
    backend_obj = as_backend(backend)
    with tr.span("run", graph=graph_name) as sp:
        result = detect_communities(
            graph,
            scorer,
            termination=termination,
            matcher=matcher,
            contractor=contractor,
            selector=selector,
            recorder=recorder,
            tracer=tr,
            timeline=timeline,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            backend=backend_obj,
            guardian=guardian,
            telemetry=telemetry,
            memprof=memprof,
        )
        sp.set(
            items=graph.n_edges,
            matcher=matcher,
            contractor=contractor,
            backend=backend_obj.name,
            n_levels=result.n_levels,
            terminated_by=result.terminated_by,
        )
    return TracedRun(
        graph_name=graph_name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        result=result,
        recorder=recorder,
        tracer=tracer,
        timeline=timeline,
    )


@dataclass
class ScalingResult:
    """One platform's sweep for one graph: times per parallelism point."""

    machine: MachineModel
    graph_name: str
    n_edges: int
    times: dict[int, list[float]] = field(default_factory=dict)

    def median_times(self) -> dict[int, float]:
        return {p: float(np.median(ts)) for p, ts in self.times.items()}

    def best_single_unit_time(self) -> float:
        """Best (minimum) time at one thread/processor — the paper's
        speed-up baseline."""
        if 1 not in self.times:
            raise ValueError("sweep does not include parallelism 1")
        return min(self.times[1])

    def best_time(self) -> float:
        """Fastest time at any allocation."""
        return min(min(ts) for ts in self.times.values())

    def best_parallelism(self) -> int:
        """Allocation achieving :meth:`best_time`."""
        return min(
            self.times, key=lambda p: min(self.times[p])
        )

    def speedups(self) -> dict[int, float]:
        """Median speed-up over the best single-unit time, per point."""
        base = self.best_single_unit_time()
        return {p: base / float(np.median(ts)) for p, ts in self.times.items()}

    def best_speedup(self) -> float:
        """The number the paper annotates on Figure 2."""
        base = self.best_single_unit_time()
        return base / self.best_time()


def scaling_experiment(
    run: TracedRun,
    machines: Sequence[MachineModel],
    *,
    parallelism: Sequence[int] | None = None,
    n_runs: int = 3,
    seed: SeedLike = 0,
) -> dict[str, ScalingResult]:
    """Sweep a traced run across platforms; returns results keyed by
    platform name."""
    out: dict[str, ScalingResult] = {}
    for machine in machines:
        points = parallelism
        if points is not None:
            points = [p for p in points if p <= machine.max_parallelism]
            if 1 not in points:
                points = [1] + list(points)
        times = simulate_sweep(
            run.recorder.records,
            machine,
            points,
            n_runs=n_runs,
            seed=seed,
        )
        out[machine.name] = ScalingResult(
            machine=machine,
            graph_name=run.graph_name,
            n_edges=run.n_edges,
            times=times,
        )
    return out


def peak_rate(result: ScalingResult) -> float:
    """Peak processing rate in input edges per second (the paper's
    Table III: |E| over the fastest time)."""
    return result.n_edges / result.best_time()
