"""The benchmark ledger: durable, machine-readable perf/quality records.

The paper's claims are quantitative — contraction is 40–80 % of runtime
(§IV-C), 13.9× speed-up on 80 threads, coverage ≥ 0.5 termination — so
whether a change made this reproduction faster or better must be a
machine-checkable question, not an eyeball over free-form ``.txt``
files.  This module defines the repo's unit of benchmark evidence:

* :class:`RunRecord` — one schema-versioned benchmark run: the graph,
  the kernel/scorer configuration, the host, and N repetitions each
  carrying end-to-end seconds, the per-phase breakdown from
  :func:`repro.obs.phase_totals`, the per-level
  :class:`~repro.obs.QualityTimeline`, and peak RSS;
* :func:`write_ledger` / :func:`read_ledger` — atomic
  (write-tmp-then-rename, same durability rule as
  :mod:`repro.resilience.checkpoint`) JSON emission to
  ``BENCH_<name>.json`` and validated load;
* :func:`compare_ledgers` — per-phase and end-to-end deltas between two
  ledgers using **min-of-N** repetition times (the standard
  noise-robust statistic for benchmark comparison) with a relative
  tolerance and an absolute noise floor, plus a final-modularity
  quality check;
* :func:`render_ledger` / :func:`render_comparison` — the ``.txt``
  views over the JSON (ASCII tables; the JSON is the source of truth).

``repro compare a.json b.json`` (see :mod:`repro.cli`) renders the
comparison and exits nonzero iff something regressed beyond tolerance —
the contract CI's smoke-bench job enforces against
``benchmarks/baselines/smoke.json``.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.reporting import format_table
from repro.errors import ReproError
from repro.util.atomicio import atomic_write

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "Repetition",
    "RunRecord",
    "repetition_from_run",
    "host_info",
    "peak_rss_bytes",
    "ledger_path",
    "write_ledger",
    "read_ledger",
    "PhaseDelta",
    "LedgerComparison",
    "CONFIG_DRIFT_KEYS",
    "config_drift",
    "compare_ledgers",
    "render_ledger",
    "render_comparison",
]

#: Version of the on-disk ledger schema.
LEDGER_SCHEMA_VERSION = 1

_SCHEMA_NAME = "repro-bench-ledger"

#: The per-phase keys a repetition's ``phases`` block carries
#: (:func:`repro.obs.phase_totals` output).
PHASE_KEYS = ("score", "match", "contract", "total")


@dataclass
class Repetition:
    """One timed execution inside a benchmark run.

    ``total_s`` is the end-to-end wall time of the repetition (includes
    phases plus driver overhead); ``phases`` is the
    :func:`~repro.obs.phase_totals` dict for the run's spans; ``quality``
    is the :meth:`~repro.obs.QualityTimeline.as_dict` timeline (or
    ``None`` when not recorded); ``peak_rss_bytes`` is the process peak
    resident set at the end of the repetition (``None`` when the
    platform cannot report it); ``recovery`` is the run's
    :meth:`~repro.resilience.RecoveryReport.as_dict` dump when any
    recovery or guardian action fired (``None`` for clean runs), so
    degraded benchmark numbers are never mistaken for healthy ones;
    ``attribution`` is the :func:`~repro.obs.attribution.attribute_run`
    block (hotspots, worker imbalance, serial fraction, Amdahl ceiling)
    when the repetition was traced (``None`` otherwise), so the ledger
    records not just *how fast* but *why that fast*; ``telemetry`` is
    the :meth:`~repro.obs.telemetry.TelemetrySampler.stats` block
    (sample count, in-flight peak RSS, max ramp rate) when the
    repetition ran under the live sampler (``None`` otherwise) — unlike
    ``peak_rss_bytes`` (the kernel's whole-process high-water mark) it
    reflects only this repetition's window; ``tuner`` is the
    :meth:`~repro.core.tuner.KernelTuner.as_dict` decision ledger when
    the repetition auto-selected kernels per level (``None`` for
    fixed-kernel runs), so a ledger always explains *which* kernels
    produced its numbers.
    """

    total_s: float
    phases: dict = field(default_factory=dict)
    quality: dict | None = None
    peak_rss_bytes: int | None = None
    n_levels: int = 0
    n_communities: int = 0
    terminated_by: str = ""
    recovery: dict | None = None
    attribution: dict | None = None
    telemetry: dict | None = None
    tuner: dict | None = None

    def final_quality(self) -> dict | None:
        """The last level's quality sample, if a timeline was recorded."""
        if not self.quality:
            return None
        levels = self.quality.get("levels") or []
        return levels[-1] if levels else None


@dataclass
class RunRecord:
    """A schema-versioned benchmark run record (one ledger file)."""

    name: str
    graph: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    host: dict = field(default_factory=dict)
    repetitions: list[Repetition] = field(default_factory=list)
    created_unix: float = 0.0
    version: int = LEDGER_SCHEMA_VERSION

    # ------------------------------------------------------------ statistics
    def min_total_s(self) -> float:
        """Best end-to-end seconds over the repetitions (min-of-N)."""
        if not self.repetitions:
            raise ValueError(f"ledger {self.name!r} has no repetitions")
        return min(r.total_s for r in self.repetitions)

    def min_phase_s(self, phase: str) -> float | None:
        """Best seconds for one pipeline phase, or ``None`` if untracked."""
        values = [
            r.phases[phase]
            for r in self.repetitions
            if r.phases and phase in r.phases
        ]
        return min(values) if values else None

    def best_final_modularity(self) -> float | None:
        """Best final modularity across repetitions, if timelines exist."""
        values = [
            q["modularity"]
            for r in self.repetitions
            if (q := r.final_quality()) is not None
        ]
        return max(values) if values else None

    # --------------------------------------------------------- serialization
    def as_dict(self) -> dict:
        return {
            "schema": _SCHEMA_NAME,
            "version": self.version,
            "name": self.name,
            "created_unix": self.created_unix,
            "graph": self.graph,
            "config": self.config,
            "host": self.host,
            "repetitions": [
                {
                    "total_s": r.total_s,
                    "phases": r.phases,
                    "quality": r.quality,
                    "peak_rss_bytes": r.peak_rss_bytes,
                    "n_levels": r.n_levels,
                    "n_communities": r.n_communities,
                    "terminated_by": r.terminated_by,
                    "recovery": r.recovery,
                    "attribution": r.attribution,
                    "telemetry": r.telemetry,
                    "tuner": r.tuner,
                }
                for r in self.repetitions
            ],
        }

    @classmethod
    def from_dict(cls, data: dict, *, source: str = "<dict>") -> "RunRecord":
        if not isinstance(data, dict) or data.get("schema") != _SCHEMA_NAME:
            raise ReproError(f"{source}: not a {_SCHEMA_NAME} file")
        if data.get("version") != LEDGER_SCHEMA_VERSION:
            raise ReproError(
                f"{source}: unsupported ledger version "
                f"{data.get('version')!r} (expected {LEDGER_SCHEMA_VERSION})"
            )
        try:
            reps = [
                Repetition(
                    total_s=float(r["total_s"]),
                    phases=r.get("phases") or {},
                    quality=r.get("quality"),
                    peak_rss_bytes=r.get("peak_rss_bytes"),
                    n_levels=int(r.get("n_levels", 0)),
                    n_communities=int(r.get("n_communities", 0)),
                    terminated_by=r.get("terminated_by", ""),
                    recovery=r.get("recovery"),
                    attribution=r.get("attribution"),
                    telemetry=r.get("telemetry"),
                    tuner=r.get("tuner"),
                )
                for r in data.get("repetitions", [])
            ]
            return cls(
                name=data["name"],
                graph=data.get("graph", {}),
                config=data.get("config", {}),
                host=data.get("host", {}),
                repetitions=reps,
                created_unix=float(data.get("created_unix", 0.0)),
                version=data["version"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"{source}: malformed ledger: {exc}") from exc


def repetition_from_run(
    run,
    total_s: float,
    *,
    telemetry: dict | None = None,
    memory: dict | None = None,
) -> Repetition:
    """Build a :class:`Repetition` from a harness :class:`TracedRun`.

    ``total_s`` is the externally measured end-to-end wall time of the
    repetition; phases come from the run's spans
    (:meth:`~repro.bench.harness.TracedRun.phase_breakdown`), the
    quality block from its timeline, and the attribution block
    (:func:`repro.obs.attribution.attribute_run`) from its tracer,
    when each was attached.  ``telemetry`` is the live sampler's
    :meth:`~repro.obs.telemetry.TelemetrySampler.stats` block for this
    repetition, and ``memory`` the phase memory-attribution report
    (:meth:`~repro.obs.memprof.PhaseMemoryProfiler.report`) — both pass
    through into the stored repetition / attribution document.
    """
    timeline = getattr(run, "timeline", None)
    recovery = getattr(run.result, "recovery", None)
    tracer = getattr(run, "tracer", None)
    attribution = None
    if tracer is not None and getattr(tracer, "enabled", False):
        from repro.obs.attribution import attribute_run

        attribution = attribute_run(list(tracer.spans), memory=memory)
    return Repetition(
        total_s=float(total_s),
        phases=run.phase_breakdown() or {},
        quality=(
            timeline.as_dict()
            if timeline is not None and timeline.enabled
            else None
        ),
        peak_rss_bytes=peak_rss_bytes(),
        n_levels=run.result.n_levels,
        n_communities=run.result.n_communities,
        terminated_by=run.result.terminated_by,
        recovery=(
            recovery.as_dict()
            if recovery is not None and recovery.any_recovery()
            else None
        ),
        attribution=attribution,
        telemetry=telemetry or None,
        tuner=getattr(run.result, "tuner", None),
    )


# ------------------------------------------------------------------ host
def host_info() -> dict:
    """The environment block every ledger carries (comparability key)."""
    return {
        "platform": _platform.platform(),
        "machine": _platform.machine(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "hostname": _platform.node(),
    }


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, in bytes (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


# ------------------------------------------------------------------- I/O
def ledger_path(name: str, directory: str | os.PathLike = ".") -> Path:
    """The canonical ledger location: ``<directory>/BENCH_<name>.json``."""
    return Path(directory) / f"BENCH_{name}.json"


def write_ledger(
    record: RunRecord,
    path: str | os.PathLike | None = None,
    *,
    directory: str | os.PathLike = ".",
) -> Path:
    """Atomically write a ledger file; returns the final path.

    The record is serialized to a temporary file in the destination
    directory, fsynced, then ``os.replace``-d into place — a crash
    mid-write can never leave a truncated file under the final name
    (the same durability rule as :mod:`repro.resilience.checkpoint`).
    """
    final = Path(path) if path is not None else ledger_path(
        record.name, directory
    )
    final.parent.mkdir(parents=True, exist_ok=True)
    with atomic_write(final) as fh:
        json.dump(record.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return final


def read_ledger(path: str | os.PathLike) -> RunRecord:
    """Load and validate a ledger written by :func:`write_ledger`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ReproError(f"{path}: cannot read ledger: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproError(f"{path}: not valid JSON: {exc}") from exc
    return RunRecord.from_dict(data, source=str(path))


# ------------------------------------------------------------- comparison
#: The ``config`` keys that determine *which code ran* — two ledgers
#: disagreeing on any of these are measuring different things, and a
#: timing diff between them is meaningless.
CONFIG_DRIFT_KEYS = ("scorer", "matcher", "contractor", "tuner")


def config_drift(
    base: RunRecord,
    new: RunRecord,
    *,
    keys: tuple[str, ...] = CONFIG_DRIFT_KEYS,
) -> list[str]:
    """Kernel/tuner config mismatches between two ledgers.

    Returns one human-readable line per differing key (empty list when
    the configs agree).  A key absent on both sides never drifts, so
    pre-tuner ledgers (no ``tuner`` key) compare cleanly against each
    other.  ``repro compare`` refuses to diff drifting ledgers — with
    per-level auto-selection in the mix, silently comparing a
    ``worklist`` run against an ``auto`` run would let a kernel change
    masquerade as a perf regression (or hide one).
    """
    drift = []
    for key in keys:
        b = base.config.get(key)
        n = new.config.get(key)
        if b != n:
            drift.append(
                f"config.{key}: {base.name!r} ran {b!r}, {new.name!r} ran {n!r}"
            )
    return drift


@dataclass(frozen=True)
class PhaseDelta:
    """One comparison row: a phase (or quality metric) across two ledgers.

    ``status`` ∈ ``{"ok", "regression", "improved", "n/a"}`` — ``n/a``
    when either side lacks the measurement.  For time rows, positive
    ``delta`` means the new side is slower; for the quality row the sign
    is flipped on ingest so positive ``delta`` always means "worse".
    """

    metric: str
    base: float | None
    new: float | None
    delta: float
    ratio: float
    status: str


@dataclass
class LedgerComparison:
    """Full outcome of comparing two ledgers."""

    base_name: str
    new_name: str
    rows: list[PhaseDelta] = field(default_factory=list)
    tolerance: float = 0.05
    noise_floor_s: float = 0.005
    quality_tolerance: float = 0.02

    @property
    def regressed(self) -> bool:
        return any(r.status == "regression" for r in self.rows)

    def regressions(self) -> list[PhaseDelta]:
        return [r for r in self.rows if r.status == "regression"]


def _classify(
    delta: float, ratio: float, tolerance: float, noise_floor: float
) -> str:
    if delta > noise_floor and ratio > tolerance:
        return "regression"
    if -delta > noise_floor and -ratio > tolerance:
        return "improved"
    return "ok"


def compare_ledgers(
    base: RunRecord,
    new: RunRecord,
    *,
    tolerance: float = 0.05,
    noise_floor_s: float = 0.005,
    quality_tolerance: float = 0.02,
) -> LedgerComparison:
    """Compare two ledgers phase by phase using min-of-N repetition times.

    A time row regresses when the new minimum exceeds the base minimum
    by **both** more than ``tolerance`` (relative) and more than
    ``noise_floor_s`` (absolute) — the double condition keeps
    microsecond phases from tripping percent-based thresholds and slow
    phases from hiding behind the absolute floor.  Final modularity
    regresses when it drops by more than ``quality_tolerance``
    (absolute).  Rows where either side lacks the measurement are
    marked ``n/a`` and never regress.
    """
    if tolerance < 0 or noise_floor_s < 0 or quality_tolerance < 0:
        raise ValueError("tolerances must be non-negative")
    cmp = LedgerComparison(
        base_name=base.name,
        new_name=new.name,
        tolerance=tolerance,
        noise_floor_s=noise_floor_s,
        quality_tolerance=quality_tolerance,
    )

    def time_row(metric: str, b: float | None, n: float | None) -> PhaseDelta:
        if b is None or n is None:
            return PhaseDelta(metric, b, n, 0.0, 0.0, "n/a")
        delta = n - b
        ratio = delta / b if b > 0 else (0.0 if n == 0 else float("inf"))
        return PhaseDelta(
            metric, b, n, delta, ratio,
            _classify(delta, ratio, tolerance, noise_floor_s),
        )

    for phase in PHASE_KEYS:
        cmp.rows.append(
            time_row(
                f"phase.{phase}",
                base.min_phase_s(phase),
                new.min_phase_s(phase),
            )
        )
    b_total = base.min_total_s() if base.repetitions else None
    n_total = new.min_total_s() if new.repetitions else None
    cmp.rows.append(time_row("end_to_end", b_total, n_total))

    b_q = base.best_final_modularity()
    n_q = new.best_final_modularity()
    if b_q is None or n_q is None:
        cmp.rows.append(
            PhaseDelta("final_modularity", b_q, n_q, 0.0, 0.0, "n/a")
        )
    else:
        drop = b_q - n_q  # positive = worse, matching the time rows
        status = "ok"
        if drop > quality_tolerance:
            status = "regression"
        elif -drop > quality_tolerance:
            status = "improved"
        cmp.rows.append(
            PhaseDelta(
                "final_modularity",
                b_q,
                n_q,
                drop,
                drop / abs(b_q) if b_q else 0.0,
                status,
            )
        )
    return cmp


# ------------------------------------------------------------------ views
def _fmt_s(v: float | None) -> str:
    return "-" if v is None else f"{v:.4f}"


def render_comparison(cmp: LedgerComparison) -> str:
    """ASCII regression table — the human view of :func:`compare_ledgers`."""
    rows = []
    for r in cmp.rows:
        if r.metric == "final_modularity":
            b = "-" if r.base is None else f"{r.base:.4f}"
            n = "-" if r.new is None else f"{r.new:.4f}"
            delta = f"{-r.delta:+.4f}" if r.status != "n/a" else "-"
        else:
            b, n = _fmt_s(r.base), _fmt_s(r.new)
            delta = (
                f"{100.0 * r.ratio:+.1f}%" if r.status != "n/a" else "-"
            )
        rows.append([r.metric, b, n, delta, r.status])
    table = format_table(
        ["metric", cmp.base_name, cmp.new_name, "delta", "status"],
        rows,
        title=(
            f"ledger comparison — {cmp.base_name} vs {cmp.new_name} "
            f"(min-of-N; tolerance {100.0 * cmp.tolerance:.0f}%, "
            f"noise floor {cmp.noise_floor_s:g}s)"
        ),
    )
    verdict = (
        f"REGRESSION: {', '.join(r.metric for r in cmp.regressions())}"
        if cmp.regressed
        else "no regression beyond tolerance"
    )
    return f"{table}\n{verdict}"


def render_ledger(record: RunRecord) -> str:
    """ASCII view of one ledger: phase times and the quality timeline."""
    n = len(record.repetitions)
    head = (
        f"benchmark ledger — {record.name} "
        f"(schema v{record.version}, {n} repetition{'s' if n != 1 else ''})\n"
        f"graph: {record.graph.get('name', '?')} "
        f"|V|={record.graph.get('n_vertices', '?')} "
        f"|E|={record.graph.get('n_edges', '?')}   "
        f"host: {record.host.get('hostname', '?')} "
        f"({record.host.get('cpu_count', '?')} cpus)"
    )
    phase_rows = []
    for phase in (*PHASE_KEYS, "end_to_end"):
        if phase == "end_to_end":
            values = [r.total_s for r in record.repetitions]
        else:
            values = [
                r.phases[phase]
                for r in record.repetitions
                if r.phases and phase in r.phases
            ]
        if not values:
            continue
        phase_rows.append(
            [
                phase,
                f"{min(values):.4f}",
                f"{sorted(values)[len(values) // 2]:.4f}",
                f"{max(values):.4f}",
            ]
        )
    blocks = [
        head,
        format_table(
            ["phase", "min s", "median s", "max s"],
            phase_rows,
            title="per-phase seconds (over repetitions)",
        ),
    ]
    rep = record.repetitions[0] if record.repetitions else None
    if rep is not None and rep.quality and rep.quality.get("levels"):
        q_rows = [
            [
                str(s["level"]),
                str(s["n_communities"]),
                f"{s['modularity']:.4f}",
                f"{s['coverage']:.4f}",
                f"{s['merge_fraction']:.3f}",
                str(s["matching_passes"]),
                str(s["community_sizes"].get("max", "-")),
            ]
            for s in rep.quality["levels"]
        ]
        blocks.append(
            format_table(
                [
                    "level",
                    "communities",
                    "modularity",
                    "coverage",
                    "merge frac",
                    "passes",
                    "max size",
                ],
                q_rows,
                title="quality timeline (repetition 0)",
            )
        )
    if rep is not None and rep.tuner:
        t = rep.tuner
        parts = []
        for kind, counts in sorted((t.get("selected") or {}).items()):
            picks = ", ".join(
                f"{name}×{n}" for name, n in sorted(counts.items())
            )
            parts.append(f"{kind}: {picks}")
        constrained = sum(
            1
            for d in t.get("decisions") or []
            if d.get("constrained_sharded")
        )
        blocks.append(
            f"tuner (repetition 0): policy {t.get('policy', '?')}, "
            f"{t.get('n_decisions', 0)} decision(s)"
            + (f" [{'; '.join(parts)}]" if parts else "")
            + (
                f", {constrained} constrained to sharded-capable kernels"
                if constrained
                else ""
            )
        )
    if rep is not None and rep.peak_rss_bytes:
        blocks.append(
            f"peak RSS: {rep.peak_rss_bytes / (1024 * 1024):.1f} MiB"
        )
    if rep is not None and rep.telemetry:
        t = rep.telemetry
        blocks.append(
            f"live telemetry (repetition 0): "
            f"{t.get('n_samples', 0)} sample(s) at "
            f"{t.get('interval_s', 0.0):g}s, "
            f"peak {t.get('peak_rss_mb', 0.0):.1f} MB anon RSS, "
            f"max ramp {t.get('max_ramp_mb_s', 0.0):+.2f} MB/s "
            f"[{t.get('rss_source', '?')}]"
        )
    if rep is not None and rep.attribution:
        a = rep.attribution
        w = a.get("workers") or {}
        am = a.get("amdahl") or {}
        hot = a.get("hotspots") or []
        n_bad = len((a.get("consistency") or {}).get("violations") or [])
        lines = ["attribution (repetition 0):"]
        if hot:
            lines.append(
                "  hotspots: "
                + ", ".join(
                    f"{h['name']} {h['self_s']:.4f}s" for h in hot[:3]
                )
            )
        lines.append(
            f"  workers: {w.get('n_lanes', 0)} lane(s), "
            f"imbalance {w.get('imbalance', 0.0):.2f}, "
            f"queue wait {w.get('queue_wait_s', 0.0):.4f}s"
        )
        lines.append(
            f"  serial fraction "
            f"{100.0 * am.get('serial_fraction', 1.0):.1f}% -> "
            f"Amdahl ceiling {am.get('ceiling_at_n', 1.0):.2f}x "
            f"at N={am.get('n_workers', 1)}"
        )
        lines.append(
            "  consistency: "
            + ("OK" if n_bad == 0 else f"{n_bad} violation(s)")
        )
        blocks.append("\n".join(lines))
    degraded = [
        (idx, r.recovery)
        for idx, r in enumerate(record.repetitions)
        if r.recovery
    ]
    if degraded:
        lines = ["recovery/guardian activity (degraded repetitions):"]
        for idx, rec in degraded:
            ladder = rec.get("ladder") or []
            parts = [
                f"{key}={rec[key]}"
                for key in (
                    "retries",
                    "degraded_chunks",
                    "chunk_failures",
                    "guardian_breaches",
                )
                if rec.get(key)
            ]
            if ladder:
                parts.append(f"ladder=[{' -> '.join(ladder)}]")
            lines.append(f"  rep {idx}: {', '.join(parts) or 'recovered'}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
