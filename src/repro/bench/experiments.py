"""Per-figure/table experiment definitions (DESIGN.md §4).

Each function is self-contained: it builds the scaled dataset(s), runs the
traced algorithm, sweeps the platforms the paper uses for that exhibit and
returns structured results that the ``benchmarks/`` scripts assert on and
print.  Figure/table numbering follows the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bench.datasets import load_dataset
from repro.bench.harness import (
    ScalingResult,
    TracedRun,
    run_with_trace,
    scaling_experiment,
)
from repro.obs.trace import NullTracer, Tracer
from repro.platform.machine import (
    CRAY_XMT,
    CRAY_XMT2,
    INTEL_E7_8870,
    INTEL_X5650,
    INTEL_X5570,
    MachineModel,
)
from repro.util.rng import SeedLike

__all__ = [
    "FigureData",
    "figure1",
    "figure2",
    "figure3",
    "table3",
    "ALL_PLATFORMS",
    "FIG12_GRAPHS",
]

#: Platform order used in Figures 1-2.
ALL_PLATFORMS: tuple[MachineModel, ...] = (
    INTEL_X5570,
    INTEL_X5650,
    INTEL_E7_8870,
    CRAY_XMT,
    CRAY_XMT2,
)

#: The two graphs of Figures 1-2.
FIG12_GRAPHS: tuple[str, ...] = ("rmat-24-16", "soc-LiveJournal1")


@dataclass
class FigureData:
    """Sweeps keyed by graph name then platform name, plus the traced runs."""

    sweeps: dict[str, dict[str, ScalingResult]]
    runs: dict[str, TracedRun]


def _trace(
    name: str,
    *,
    scale: float,
    seed: SeedLike,
    tracer: Tracer | NullTracer | None = None,
) -> TracedRun:
    graph = load_dataset(name, scale=scale, seed=seed)
    return run_with_trace(graph, graph_name=name, tracer=tracer)


def figure1(
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    tracer: Tracer | NullTracer | None = None,
) -> FigureData:
    """Execution time vs threads/processors, 5 platforms × 2 graphs."""
    sweeps: dict[str, dict[str, ScalingResult]] = {}
    runs: dict[str, TracedRun] = {}
    for gname in FIG12_GRAPHS:
        run = _trace(gname, scale=scale, seed=seed, tracer=tracer)
        runs[gname] = run
        sweeps[gname] = scaling_experiment(run, ALL_PLATFORMS, seed=seed)
    return FigureData(sweeps=sweeps, runs=runs)


def figure2(
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    tracer: Tracer | NullTracer | None = None,
) -> FigureData:
    """Speed-up vs best single-unit run — same sweeps as Figure 1."""
    return figure1(scale=scale, seed=seed, tracer=tracer)


def figure3(
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    tracer: Tracer | NullTracer | None = None,
) -> FigureData:
    """uk-2007-05 time and speed-up on E7-8870 and XMT2 only (the paper's
    two platforms big enough for the graph)."""
    run = _trace("uk-2007-05", scale=scale, seed=seed, tracer=tracer)
    sweeps = {
        "uk-2007-05": scaling_experiment(
            run, (INTEL_E7_8870, CRAY_XMT2), seed=seed
        )
    }
    return FigureData(sweeps=sweeps, runs={"uk-2007-05": run})


def table3(
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    tracer: Tracer | NullTracer | None = None,
) -> Mapping[str, Mapping[str, ScalingResult]]:
    """Peak processing rates: Figures 1+3 sweeps arranged per Table III."""
    data = figure1(scale=scale, seed=seed, tracer=tracer)
    uk = figure3(scale=scale, seed=seed, tracer=tracer)
    sweeps = dict(data.sweeps)
    sweeps["uk-2007-05"] = uk.sweeps["uk-2007-05"]
    return sweeps
