"""Every number the paper reports, in one place.

Benchmarks and tests compare against these constants instead of scattering
literals; EXPERIMENTS.md quotes them.  Sources are the paper's Tables I-III
and the annotations printed on Figures 1-3.
"""

from __future__ import annotations

__all__ = [
    "TABLE1",
    "TABLE2",
    "TABLE3_RATES",
    "FIG1_BEST_TIMES",
    "FIG2_BEST_SPEEDUPS",
    "FIG3_UK",
]

#: Table I: (processors, max threads/proc, clock string).
TABLE1: dict[str, tuple[int, int, str]] = {
    "XMT": (128, 100, "500MHz"),
    "XMT2": (64, 102, "500MHz"),
    "E7-8870": (4, 20, "2.40GHz"),
    "X5650": (2, 12, "2.66GHz"),
    "X5570": (2, 8, "2.93GHz"),
}

#: Table II: (|V|, |E|, reference tag).
TABLE2: dict[str, tuple[int, int, str]] = {
    "rmat-24-16": (15_580_378, 262_482_711, "[32], [33]"),
    "soc-LiveJournal1": (4_847_571, 68_993_773, "[34]"),
    "uk-2007-05": (105_896_555, 3_301_876_564, "[35]"),
}

#: Table III: peak processing rate in edges/second.
TABLE3_RATES: dict[str, dict[str, float]] = {
    "X5570": {"soc-LiveJournal1": 3.89e6, "rmat-24-16": 1.83e6},
    "X5650": {"soc-LiveJournal1": 4.98e6, "rmat-24-16": 2.54e6},
    "E7-8870": {
        "soc-LiveJournal1": 6.90e6,
        "rmat-24-16": 5.86e6,
        "uk-2007-05": 6.54e6,
    },
    "XMT": {"soc-LiveJournal1": 0.41e6, "rmat-24-16": 1.20e6},
    "XMT2": {
        "soc-LiveJournal1": 1.73e6,
        "rmat-24-16": 2.11e6,
        "uk-2007-05": 3.11e6,
    },
}

#: Figure 1 annotations: (best single-unit seconds, best overall seconds).
FIG1_BEST_TIMES: dict[tuple[str, str], tuple[float, float]] = {
    ("rmat-24-16", "X5570"): (823.0, 143.0),
    ("soc-LiveJournal1", "X5570"): (90.9, 17.8),
    ("rmat-24-16", "X5650"): (502.0, 103.0),
    ("soc-LiveJournal1", "X5650"): (52.4, 13.9),
    ("rmat-24-16", "E7-8870"): (737.0, 44.8),
    ("soc-LiveJournal1", "E7-8870"): (80.1, 10.0),
    ("rmat-24-16", "XMT"): (4320.0, 218.0),
    ("soc-LiveJournal1", "XMT"): (571.0, 167.0),
    ("rmat-24-16", "XMT2"): (3080.0, 124.0),
    ("soc-LiveJournal1", "XMT2"): (369.0, 39.9),
}

#: Figure 2 annotations: best parallel speed-up.
FIG2_BEST_SPEEDUPS: dict[tuple[str, str], float] = {
    ("rmat-24-16", "X5570"): 5.75,
    ("rmat-24-16", "X5650"): 4.86,
    ("rmat-24-16", "E7-8870"): 16.5,
    ("rmat-24-16", "XMT"): 19.8,
    ("rmat-24-16", "XMT2"): 24.8,
    ("soc-LiveJournal1", "X5570"): 5.12,
    ("soc-LiveJournal1", "X5650"): 3.78,
    ("soc-LiveJournal1", "E7-8870"): 8.01,
    ("soc-LiveJournal1", "XMT"): 3.42,
    ("soc-LiveJournal1", "XMT2"): 9.24,
}

#: Figure 3 annotations: uk-2007-05 {platform: (best seconds, speed-up)}.
#: (The abstract quotes ~500 s on 80 Intel threads, 1100 s on the XMT2.)
FIG3_UK: dict[str, tuple[float, float]] = {
    "E7-8870": (504.9, 13.7),
    "XMT2": (1063.0, 29.6),
}
