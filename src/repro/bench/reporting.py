"""Plain-text, paper-style tables for the benchmark scripts.

Every formatter returns a string so benchmarks can both print it and tee
it into EXPERIMENTS.md evidence files.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.bench.datasets import DATASETS
from repro.bench.paper_data import TABLE3_RATES
from repro.bench.harness import ScalingResult, peak_rate
from repro.platform.machine import PLATFORMS

__all__ = [
    "format_table",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_scaling",
]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[k]) for r in cells)) if cells else len(h)
        for k, h in enumerate(headers)
    ]
    def fmt_row(row: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[k]) for k, c in enumerate(row)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def format_table1() -> str:
    """The paper's Table I: processor characteristics of the platforms."""
    order = ["XMT", "XMT2", "E7-8870", "X5650", "X5570"]
    rows = [PLATFORMS[name].table1_row() for name in order]
    return format_table(
        ["Processor", "# proc.", "Max. threads/proc.", "Proc. speed"],
        rows,
        title="Table I: processor characteristics (paper's architectural facts)",
    )


def format_table2(
    measured: Mapping[str, tuple[int, int]] | None = None
) -> str:
    """Table II: graph sizes — paper values beside our scaled analogues.

    ``measured`` maps dataset name to (|V|, |E|) of the built analogue.
    """
    rows = []
    for name, spec in DATASETS.items():
        row = [name, f"{spec.paper_vertices:,}", f"{spec.paper_edges:,}"]
        if measured and name in measured:
            v, e = measured[name]
            row += [f"{v:,}", f"{e:,}"]
        else:
            row += ["-", "-"]
        rows.append(row)
    return format_table(
        ["Graph", "paper |V|", "paper |E|", "ours |V|", "ours |E|"],
        rows,
        title="Table II: evaluation graphs (paper vs. scaled analogue)",
    )


#: Paper Table III values (edges/second) for side-by-side reporting.
PAPER_TABLE3 = TABLE3_RATES


def format_table3(
    results: Mapping[str, Mapping[str, ScalingResult]]
) -> str:
    """Table III: peak processing rate per platform × graph.

    ``results[graph_name][platform_name]`` holds each sweep.
    """
    platforms = ["X5570", "X5650", "E7-8870", "XMT", "XMT2"]
    graphs = ["soc-LiveJournal1", "rmat-24-16", "uk-2007-05"]
    rows = []
    for plat in platforms:
        row: list[object] = [plat]
        for g in graphs:
            res = results.get(g, {}).get(plat)
            if res is None:
                row.append("-")
            else:
                row.append(f"{peak_rate(res) / 1e6:.2f}e6")
            paper = PAPER_TABLE3.get(plat, {}).get(g)
            row.append(f"{paper / 1e6:.2f}e6" if paper else "-")
        rows.append(row)
    return format_table(
        [
            "Platform",
            "soc-LJ (ours)",
            "soc-LJ (paper)",
            "rmat (ours)",
            "rmat (paper)",
            "uk (ours)",
            "uk (paper)",
        ],
        rows,
        title="Table III: peak processing rate (edges/second of the input graph)",
    )


def format_scaling(result: ScalingResult, *, speedup: bool = False) -> str:
    """One platform's Figure 1 (times) or Figure 2 (speed-up) series."""
    unit = result.machine.allocation_unit
    if speedup:
        series = result.speedups()
        rows = [[p, f"{s:.2f}x"] for p, s in sorted(series.items())]
        title = (
            f"{result.graph_name} on {result.machine.name}: speed-up vs best "
            f"single-{unit[:-1]} run (best {result.best_speedup():.1f}x)"
        )
        return format_table([unit, "speed-up"], rows, title=title)
    rows = [
        [p, f"{min(ts):.4g}", f"{sorted(ts)[len(ts) // 2]:.4g}", f"{max(ts):.4g}"]
        for p, ts in sorted(result.times.items())
    ]
    title = (
        f"{result.graph_name} on {result.machine.name}: simulated seconds "
        f"(best {result.best_time():.4g}s at {result.best_parallelism()} {unit})"
    )
    return format_table([unit, "min", "median", "max"], rows, title=title)
