"""Benchmark harness: scaled datasets, trace collection, platform sweeps
and paper-style reporting.  The ``benchmarks/`` directory drives these to
regenerate every table and figure of the paper's evaluation."""

from repro.bench.datasets import DatasetSpec, DATASETS, load_dataset
from repro.bench.harness import (
    TracedRun,
    run_with_trace,
    scaling_experiment,
    ScalingResult,
    peak_rate,
)
from repro.bench.reporting import (
    format_table,
    format_table1,
    format_table2,
    format_table3,
    format_scaling,
)
from repro.bench.ascii_plot import ascii_xy_plot, plot_scaling_results
from repro.bench.ledger import (
    LEDGER_SCHEMA_VERSION,
    LedgerComparison,
    PhaseDelta,
    Repetition,
    RunRecord,
    compare_ledgers,
    host_info,
    ledger_path,
    read_ledger,
    render_comparison,
    render_ledger,
    repetition_from_run,
    write_ledger,
)
from repro.bench import experiments

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "Repetition",
    "RunRecord",
    "repetition_from_run",
    "host_info",
    "ledger_path",
    "write_ledger",
    "read_ledger",
    "PhaseDelta",
    "LedgerComparison",
    "compare_ledgers",
    "render_ledger",
    "render_comparison",
    "DatasetSpec",
    "DATASETS",
    "load_dataset",
    "TracedRun",
    "run_with_trace",
    "scaling_experiment",
    "ScalingResult",
    "peak_rate",
    "format_table",
    "format_table1",
    "format_table2",
    "format_table3",
    "format_scaling",
    "experiments",
    "ascii_xy_plot",
    "plot_scaling_results",
]
