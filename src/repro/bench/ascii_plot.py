"""Text-mode log-log scatter plots of the paper's figures.

The paper's Figures 1-3 are log-log plots of time (or speed-up) against
allocated threads/processors, one series per platform.  This renders the
same plots as Unicode text so the benchmark harness can regenerate the
*figures*, not just their underlying tables, without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_xy_plot", "plot_scaling_results"]

_MARKERS = "ox+*#@%&"


def _log_ticks(lo: float, hi: float) -> list[float]:
    ticks = []
    k = math.floor(math.log10(lo)) if lo > 0 else 0
    while 10.0**k <= hi * 1.0001:
        if 10.0**k >= lo * 0.9999:
            ticks.append(10.0**k)
        k += 1
    return ticks or [lo, hi]


def ascii_xy_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series on a log-log grid.

    Each series gets a marker character; overlapping points show the
    later series' marker.  Returns the multi-line plot string.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if min(xs) <= 0 or min(ys) <= 0:
        raise ValueError("log-log plot requires positive coordinates")
    lx0, lx1 = math.log10(min(xs)), math.log10(max(xs))
    ly0, ly1 = math.log10(min(ys)), math.log10(max(ys))
    if lx1 == lx0:
        lx1 = lx0 + 1
    if ly1 == ly0:
        ly1 = ly0 + 1

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = round((math.log10(x) - lx0) / (lx1 - lx0) * (width - 1))
        row = round((math.log10(y) - ly0) / (ly1 - ly0) * (height - 1))
        grid[height - 1 - row][col] = marker

    legend = []
    for k, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    y_ticks = {
        height - 1 - round((math.log10(t) - ly0) / (ly1 - ly0) * (height - 1)): t
        for t in _log_ticks(min(ys), max(ys))
    }
    label_width = max(
        (len(f"{t:g}") for t in y_ticks.values()), default=1
    )
    for r, row in enumerate(grid):
        tick = y_ticks.get(r)
        prefix = (f"{tick:g}".rjust(label_width) if tick is not None else " " * label_width)
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_tick_line = [" "] * width
    for t in _log_ticks(min(xs), max(xs)):
        col = round((math.log10(t) - lx0) / (lx1 - lx0) * (width - 1))
        label = f"{t:g}"
        for k, ch in enumerate(label):
            if col + k < width:
                x_tick_line[col + k] = ch
    lines.append(" " * label_width + "  " + "".join(x_tick_line))
    footer = "  ".join(legend)
    if xlabel or ylabel:
        footer += f"   [x: {xlabel}, y: {ylabel}]"
    lines.append(footer)
    return "\n".join(lines)


def plot_scaling_results(
    results: Mapping[str, "ScalingResult"],  # noqa: F821 - doc type
    *,
    speedup: bool = False,
    title: str = "",
) -> str:
    """Figure 1/2-style plot of a platform sweep dictionary."""
    series = {}
    for name, sr in results.items():
        if speedup:
            pts = sorted(sr.speedups().items())
        else:
            pts = sorted(sr.median_times().items())
        series[name] = [(float(p), float(v)) for p, v in pts]
    return ascii_xy_plot(
        series,
        title=title,
        xlabel="threads/processors",
        ylabel="speed-up" if speedup else "seconds",
    )
