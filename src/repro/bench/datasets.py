"""Scaled-down analogues of the paper's Table II evaluation graphs.

The paper's graphs range from 69 M to 3.3 G edges; the analogues keep each
graph's *role* in the evaluation at laptop scale (see DESIGN.md §2):

* ``rmat-24-16`` — same R-MAT generator and parameters, smaller scale;
* ``soc-LiveJournal1`` — planted-partition graph with power-law community
  sizes: strong community structure, small size (runs out of parallelism
  at high processor counts, as in the paper);
* ``uk-2007-05`` — host-locality web-crawl model, the largest of the
  three (keeps scaling where soc-LiveJournal1 stops).

Relative sizes preserve the paper's ordering:
uk-2007-05 > rmat > soc-LiveJournal1 by edge count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graph.graph import CommunityGraph
from repro.generators.rmat import rmat_graph
from repro.generators.sbm import planted_partition_graph
from repro.generators.webgraph import webgraph
from repro.util.rng import SeedLike

__all__ = ["DatasetSpec", "DATASETS", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation graph: paper-reported size plus our scaled builder."""

    name: str
    paper_vertices: int
    paper_edges: int
    reference: str
    build: Callable[[float, SeedLike], CommunityGraph]

    def load(self, scale: float = 1.0, seed: SeedLike = 0) -> CommunityGraph:
        """Build the scaled analogue; ``scale`` multiplies the base size."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.build(scale, seed)


def _build_rmat(scale: float, seed: SeedLike) -> CommunityGraph:
    # Base R-MAT scale 16 (65536 vertices, edge factor 16); the dataset
    # `scale` factor shifts the R-MAT scale by its log2.
    import math

    s = max(4, 16 + int(round(math.log2(scale))))
    return rmat_graph(s, 16, seed=seed)


def _build_livejournal(scale: float, seed: SeedLike) -> CommunityGraph:
    return planted_partition_graph(
        int(1_500 * scale),
        mean_community_size=30.0,
        p_in=0.3,
        background_degree=3.0,
        seed=seed,
    )


def _build_uk(scale: float, seed: SeedLike) -> CommunityGraph:
    return webgraph(
        int(80_000 * scale),
        edges_per_vertex=16.0,
        mean_host_size=60.0,
        on_host_fraction=0.8,
        seed=seed,
    )


DATASETS: dict[str, DatasetSpec] = {
    "rmat-24-16": DatasetSpec(
        name="rmat-24-16",
        paper_vertices=15_580_378,
        paper_edges=262_482_711,
        reference="[32], [33]",
        build=_build_rmat,
    ),
    "soc-LiveJournal1": DatasetSpec(
        name="soc-LiveJournal1",
        paper_vertices=4_847_571,
        paper_edges=68_993_773,
        reference="[34]",
        build=_build_livejournal,
    ),
    "uk-2007-05": DatasetSpec(
        name="uk-2007-05",
        paper_vertices=105_896_555,
        paper_edges=3_301_876_564,
        reference="[35]",
        build=_build_uk,
    ),
}


def load_dataset(
    name: str, *, scale: float = 1.0, seed: SeedLike = 0
) -> CommunityGraph:
    """Build the scaled analogue of a Table II graph by paper name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    return spec.load(scale, seed)
