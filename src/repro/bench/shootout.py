"""The kernel shootout: sweep matcher × contractor, fit the cost table.

``python -m repro.bench.shootout`` runs every registered matcher ×
contractor pair over three shape-diverse generator workloads —

* **rmat** — power-law degree skew (the paper's primary workload),
* **sbm** — a flat planted-partition graph (low skew, strong
  community structure),
* **ba** — Barabási–Albert preferential attachment (hub-dominated,
  no community structure; the matcher stressor)

— and emits two artifacts:

1. ``BENCH_kernels.json``: a standard benchmark ledger
   (:mod:`repro.bench.ledger` schema) with **one repetition per
   matcher×contractor cell**; the repetition's ``total_s``/``phases``
   sum that cell's wall-clock across the suite, so ``repro trend``
   tracks the best pair's suite time exactly like it tracks the smoke
   bench, and ``config.cells`` maps repetitions back to kernel pairs.
2. a **fitted cost table** (``config.cost_table``, and ``--fit-out``):
   every traced level contributes one ``(shape, seconds)`` sample per
   phase — the engine stamps density/degree-CV on its level spans —
   and :func:`repro.core.tuner.fit_cost_table` regresses each kernel's
   per-level seconds on its declared features.  This is the
   calibration behind :data:`repro.core.tuner.DEFAULT_COST_TABLE` and
   the file ``repro detect --tuner-table`` accepts (see
   docs/TUNING.md for the recalibration recipe).

Every pair produces bit-identical partitions (the registry's parity
contract, asserted here per graph), so the shootout measures pure
execution-profile differences.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

import numpy as np

from repro.bench.harness import run_with_trace
from repro.bench.ledger import (
    Repetition,
    RunRecord,
    host_info,
    peak_rss_bytes,
    render_ledger,
    write_ledger,
)
from repro.bench.smoke import append_dated_ledger
from repro.core.registry import kernel_names
from repro.core.termination import TerminationCriteria
from repro.core.tuner import LevelShape, fit_cost_table
from repro.generators import (
    barabasi_albert_graph,
    planted_partition_graph,
    rmat_graph,
)
from repro.obs import QualityTimeline, Tracer
from repro.obs.sinks import phase_totals
from repro.util.atomicio import atomic_write

__all__ = ["suite_graphs", "run_shootout", "main"]

#: Phase-span name → the registry kind whose kernel ran inside it.
_PHASE_KIND = {"match": "matcher", "contract": "contractor"}


def suite_graphs(*, scale: float = 1.0, seed: int = 1) -> list[tuple[str, object]]:
    """The three shape-diverse suite workloads, smallest-first.

    ``scale`` multiplies every size (0.5 halves the suite for quick CI
    runs; 2.0 doubles it for a sturdier fit).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    n_sbm = max(200, int(3000 * scale))
    n_ba = max(200, int(2500 * scale))
    rmat_scale = max(8, int(round(10 + np.log2(scale))))
    return [
        ("sbm", planted_partition_graph(n_sbm, seed=seed)),
        ("ba", barabasi_albert_graph(n_ba, m=4, seed=seed)),
        ("rmat", rmat_graph(rmat_scale, 8, seed=seed)),
    ]


def _level_samples(
    tracer: Tracer, matcher: str, contractor: str
) -> dict[tuple[str, str], list[tuple[LevelShape, float]]]:
    """Per-level (shape, seconds) fit samples from one cell's trace.

    The ``level`` spans carry the shape (the engine stamps density and
    degree CV when traced); their ``match``/``contract`` children carry
    the phase seconds attributed to this cell's kernels.
    """
    shapes: dict[int, LevelShape] = {}
    for span in tracer.find("level"):
        a = span.attrs
        if span.level is None or "density" not in a or "degree_cv" not in a:
            continue
        shapes[span.level] = LevelShape(
            n_vertices=int(a["n_vertices"]),
            n_edges=int(a["n_edges"]),
            density=float(a["density"]),
            degree_cv=float(a["degree_cv"]),
        )
    kernel_of = {"matcher": matcher, "contractor": contractor}
    samples: dict[tuple[str, str], list[tuple[LevelShape, float]]] = {}
    for phase, kind in _PHASE_KIND.items():
        for span in tracer.find(phase):
            shape = shapes.get(span.level if span.level is not None else -1)
            if shape is None:
                continue
            samples.setdefault((kind, kernel_of[kind]), []).append(
                (shape, span.duration_s)
            )
    return samples


def run_shootout(
    *,
    name: str = "kernels",
    scale: float = 1.0,
    seed: int = 1,
    directory: str = ".",
    matchers: Sequence[str] | None = None,
    contractors: Sequence[str] | None = None,
    fit_out: str | None = None,
    append_ledger_dir: str | None = None,
    keep_ledgers: int = 30,
):
    """Run the shootout; returns ``(record, ledger_path, cost_table)``.

    One repetition per matcher×contractor cell (suite-summed wall
    seconds and phases), parity-asserted per graph, plus the cost table
    fitted from every cell's per-level samples.  ``fit_out`` also
    writes the bare cost-table JSON; ``append_ledger_dir`` feeds the
    dated ``repro trend`` series like the smoke bench does.
    """
    matchers = list(matchers or kernel_names("matcher"))
    contractors = list(contractors or kernel_names("contractor"))
    graphs = suite_graphs(scale=scale, seed=seed)
    # Run every level down to the floor so each cell contributes as many
    # per-level fit samples as the suite can produce.
    termination = TerminationCriteria(min_communities=1, coverage=None)

    cells = [(m, c) for m in matchers for c in contractors]
    reference: dict[str, np.ndarray] = {}
    samples: dict[tuple[str, str], list[tuple[LevelShape, float]]] = {}
    repetitions: list[Repetition] = []
    cell_meta: list[dict] = []
    for matcher, contractor in cells:
        cell_total = 0.0
        cell_phases: dict[str, float] = {}
        cell_levels = 0
        timeline = QualityTimeline()
        for graph_name, graph in graphs:
            tracer = Tracer()
            timeline = QualityTimeline()
            t0 = time.perf_counter()
            run = run_with_trace(
                graph,
                graph_name=graph_name,
                termination=termination,
                matcher=matcher,
                contractor=contractor,
                tracer=tracer,
                timeline=timeline,
            )
            cell_total += time.perf_counter() - t0
            # Parity gate: every pair must land on the identical
            # partition — a cell that diverges would corrupt both the
            # ledger comparison and the tuner's "selection is free"
            # premise, so fail loudly here.
            labels = run.result.partition.labels
            if graph_name not in reference:
                reference[graph_name] = labels
            elif not np.array_equal(reference[graph_name], labels):
                raise AssertionError(
                    f"kernel pair ({matcher}, {contractor}) broke partition "
                    f"parity on {graph_name}"
                )
            for key, s in (phase_totals(list(tracer.spans)) or {}).items():
                cell_phases[key] = cell_phases.get(key, 0.0) + s
            cell_levels += run.result.n_levels
            for key, pairs in _level_samples(
                tracer, matcher, contractor
            ).items():
                samples.setdefault(key, []).extend(pairs)
        repetitions.append(
            Repetition(
                total_s=cell_total,
                phases=cell_phases,
                # Keep the last graph's timeline as the quality block so
                # compare/trend see a final modularity; parity means it
                # is identical across cells.
                quality=timeline.as_dict(),
                peak_rss_bytes=peak_rss_bytes(),
                n_levels=cell_levels,
                n_communities=0,
                terminated_by="suite",
            )
        )
        cell_meta.append({"matcher": matcher, "contractor": contractor})

    cost_table = fit_cost_table(
        samples,
        source=(
            f"bench/shootout.py scale={scale:g} seed={seed} "
            f"({'+'.join(g for g, _ in graphs)})"
        ),
    )
    record = RunRecord(
        name=name,
        graph={
            "name": f"shootout-suite-x{scale:g}",
            "n_vertices": sum(g.n_vertices for _, g in graphs),
            "n_edges": sum(g.n_edges for _, g in graphs),
            "graphs": [
                {
                    "name": gname,
                    "n_vertices": g.n_vertices,
                    "n_edges": g.n_edges,
                }
                for gname, g in graphs
            ],
        },
        config={
            "scorer": "modularity",
            # The suite sweeps kernels; record the sweep itself so
            # config_drift flags any comparison against a ledger that
            # swept a different candidate pool.
            "matcher": "x".join(matchers),
            "contractor": "x".join(contractors),
            "seed": seed,
            "scale": scale,
            "cells": cell_meta,
            "cost_table": cost_table,
        },
        host=host_info(),
        repetitions=repetitions,
        created_unix=time.time(),
    )
    path = write_ledger(record, directory=directory)
    if fit_out:
        with atomic_write(fit_out) as fh:
            json.dump(cost_table, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if append_ledger_dir is not None:
        append_dated_ledger(
            path, append_ledger_dir, name=name, keep=keep_ledgers
        )
    return record, path, cost_table


def _render_cells(record: RunRecord) -> str:
    from repro.bench.reporting import format_table

    rows = []
    order = sorted(
        range(len(record.repetitions)),
        key=lambda i: record.repetitions[i].total_s,
    )
    for rank, i in enumerate(order):
        rep = record.repetitions[i]
        cell = (record.config.get("cells") or [{}] * (i + 1))[i]
        rows.append(
            [
                str(rank),
                cell.get("matcher", "?"),
                cell.get("contractor", "?"),
                f"{rep.total_s:.4f}",
                f"{rep.phases.get('match', 0.0):.4f}",
                f"{rep.phases.get('contract', 0.0):.4f}",
            ]
        )
    return format_table(
        ["rank", "matcher", "contractor", "suite s", "match s", "contract s"],
        rows,
        title="kernel shootout — suite seconds per matcher×contractor cell",
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.shootout",
        description="sweep matcher x contractor kernels, emit "
        "BENCH_kernels.json, and fit the auto-tuner cost table",
    )
    parser.add_argument(
        "--name", default="kernels", help="ledger name (BENCH_<name>.json)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="suite size multiplier (default 1.0; CI uses 0.5)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--out-dir", default=".", help="directory for the ledger file"
    )
    parser.add_argument(
        "--matchers",
        nargs="+",
        default=None,
        choices=kernel_names("matcher"),
        help="restrict the matcher pool (default: all registered)",
    )
    parser.add_argument(
        "--contractors",
        nargs="+",
        default=None,
        choices=kernel_names("contractor"),
        help="restrict the contractor pool (default: all registered)",
    )
    parser.add_argument(
        "--fit-out",
        metavar="PATH",
        default=None,
        help="also write the fitted cost table as bare JSON "
        "(the repro detect --tuner-table input)",
    )
    parser.add_argument(
        "--append-ledger-dir",
        metavar="DIR",
        default=None,
        help="also copy the ledger to <DIR>/BENCH_<name>-<UTC date>.json "
        "for `repro trend`, pruning to --keep-ledgers files",
    )
    parser.add_argument(
        "--keep-ledgers",
        type=int,
        default=30,
        metavar="N",
        help="dated ledgers retained in --append-ledger-dir (default: 30)",
    )
    args = parser.parse_args(argv)
    record, path, cost_table = run_shootout(
        name=args.name,
        scale=args.scale,
        seed=args.seed,
        directory=args.out_dir,
        matchers=args.matchers,
        contractors=args.contractors,
        fit_out=args.fit_out,
        append_ledger_dir=args.append_ledger_dir,
        keep_ledgers=args.keep_ledgers,
    )
    print(_render_cells(record))
    print()
    print(render_ledger(record))
    print(
        f"\nfitted cost table over "
        f"{sum(1 for _ in cost_table['coefficients'].values())} kinds; "
        f"ledger written to {path}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
