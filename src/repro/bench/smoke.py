"""The smoke benchmark: one small ledger-emitting end-to-end run.

``python -m repro.bench.smoke`` detects communities on a deterministic
planted-partition graph N times and writes the schema-versioned
``BENCH_<name>.json`` ledger (phase times, per-level quality timeline,
peak RSS) via :mod:`repro.bench.ledger`, printing the ASCII view.  CI's
smoke-bench job runs this and ``repro compare``-s the result against
the committed ``benchmarks/baselines/smoke.json``.

The graph is small on purpose — the job exists to prove the telemetry
pipeline end to end (timeline → ledger → compare) on every push, not to
produce publishable numbers; the paper-scale exhibits live under
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.bench.harness import run_with_trace
from repro.bench.ledger import (
    RunRecord,
    host_info,
    render_ledger,
    repetition_from_run,
    write_ledger,
)
from repro.generators import planted_partition_graph
from repro.obs import QualityTimeline, Tracer
from repro.parallel.backends import backend_names, create_backend
from repro.resilience.guardian import RunGuardian
from repro.resilience.invariants import AUDIT_MODES

__all__ = ["run_smoke", "main"]


def run_smoke(
    *,
    name: str = "smoke",
    n_vertices: int = 4000,
    reps: int = 3,
    seed: int = 1,
    matcher: str = "worklist",
    contractor: str = "bucket",
    backend: str | None = None,
    n_workers: int = 1,
    directory: str = ".",
    audit: str = "sample",
    trace_out: str | None = None,
    perfetto_out: str | None = None,
):
    """Run the smoke benchmark and write its ledger; returns (record, path).

    ``trace_out``/``perfetto_out`` export the *last* repetition's trace
    as JSONL / Chrome trace-event JSON — the inputs ``repro report``
    and Perfetto consume.
    """
    if reps < 1:
        raise ValueError("reps must be at least 1")
    graph = planted_partition_graph(n_vertices, seed=seed)
    backend_obj = None
    if backend is not None or n_workers > 1:
        backend_obj = create_backend(
            backend or "process-pool",
            n_workers=n_workers if n_workers > 1 else None,
        )
    record = RunRecord(
        name=name,
        graph={
            "name": f"planted-{n_vertices}",
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
        config={
            "scorer": "modularity",
            "matcher": matcher,
            "contractor": contractor,
            "seed": seed,
            "backend": backend_obj.name if backend_obj is not None else "serial",
            "n_workers": backend_obj.n_workers if backend_obj is not None else 1,
            "audit": audit,
        },
        host=host_info(),
        created_unix=time.time(),
    )
    for _ in range(reps):
        tracer = Tracer()
        timeline = QualityTimeline()
        # Fresh guardian per repetition: the ladder position and audit
        # counters must not leak across timed runs.
        guardian = RunGuardian(audit) if audit != "off" else None
        t0 = time.perf_counter()
        run = run_with_trace(
            graph,
            graph_name=record.graph["name"],
            matcher=matcher,  # type: ignore[arg-type]
            contractor=contractor,  # type: ignore[arg-type]
            tracer=tracer,
            timeline=timeline,
            backend=backend_obj,
            guardian=guardian,
        )
        total_s = time.perf_counter() - t0
        record.repetitions.append(repetition_from_run(run, total_s))
    meta = {"command": "bench.smoke", "name": name, **record.graph}
    if trace_out:
        from repro.obs import write_trace

        write_trace(tracer, trace_out, meta=meta)
    if perfetto_out:
        from repro.obs.perfetto import write_perfetto

        write_perfetto(list(tracer.spans), perfetto_out, meta=meta)
    path = write_ledger(record, directory=directory)
    return record, path


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="run the ledger-emitting smoke benchmark",
    )
    parser.add_argument("--name", default="smoke", help="ledger name (BENCH_<name>.json)")
    parser.add_argument("--vertices", type=int, default=4000)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--matcher", default="worklist", choices=["worklist", "sweep"])
    parser.add_argument("--contractor", default="bucket", choices=["bucket", "chains"])
    parser.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="execution backend for the scoring phase "
        "(default: serial, or process-pool when --workers > 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the backend (implies process-pool)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for the ledger file"
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the last repetition's JSONL trace (repro report input)",
    )
    parser.add_argument(
        "--perfetto-out",
        metavar="PATH",
        default=None,
        help="write the last repetition's Chrome trace-event timeline",
    )
    parser.add_argument(
        "--audit",
        default="sample",
        choices=AUDIT_MODES,
        help="run-guardian invariant audit strictness (default: sample; "
        "the smoke gate proves its overhead stays inside the compare "
        "noise floor)",
    )
    args = parser.parse_args(argv)
    record, path = run_smoke(
        name=args.name,
        n_vertices=args.vertices,
        reps=args.reps,
        seed=args.seed,
        matcher=args.matcher,
        contractor=args.contractor,
        backend=args.backend,
        n_workers=args.workers,
        directory=args.out_dir,
        audit=args.audit,
        trace_out=args.trace_out,
        perfetto_out=args.perfetto_out,
    )
    print(render_ledger(record))
    print(f"\nledger written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
