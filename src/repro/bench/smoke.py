"""The smoke benchmark: one small ledger-emitting end-to-end run.

``python -m repro.bench.smoke`` detects communities on a deterministic
planted-partition graph N times and writes the schema-versioned
``BENCH_<name>.json`` ledger (phase times, per-level quality timeline,
peak RSS) via :mod:`repro.bench.ledger`, printing the ASCII view.  CI's
smoke-bench job runs this and ``repro compare``-s the result against
the committed ``benchmarks/baselines/smoke.json``.

The graph is small on purpose — the job exists to prove the telemetry
pipeline end to end (timeline → ledger → compare) on every push, not to
produce publishable numbers; the paper-scale exhibits live under
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.bench.harness import run_with_trace
from repro.bench.ledger import (
    RunRecord,
    host_info,
    render_ledger,
    repetition_from_run,
    write_ledger,
)
from repro.core.registry import kernel_names
from repro.core.tuner import AUTO_KERNEL, CostModelPolicy
from repro.generators import planted_partition_graph
from repro.obs import QualityTimeline, Tracer
from repro.parallel.backends import backend_names, create_backend
from repro.resilience.guardian import RunGuardian
from repro.resilience.invariants import AUDIT_MODES

__all__ = ["run_smoke", "append_dated_ledger", "main"]


def run_smoke(
    *,
    name: str = "smoke",
    n_vertices: int = 4000,
    reps: int = 3,
    seed: int = 1,
    matcher: str = "worklist",
    contractor: str = "bucket",
    backend: str | None = None,
    n_workers: int = 1,
    directory: str = ".",
    audit: str = "sample",
    memory_budget: float | None = None,
    spill_dir: str | None = None,
    shards: int | None = None,
    trace_out: str | None = None,
    perfetto_out: str | None = None,
    telemetry: bool = False,
    telemetry_interval: float = 0.05,
    status_file: str | None = None,
    memprof: bool = False,
    append_ledger_dir: str | None = None,
    keep_ledgers: int = 30,
):
    """Run the smoke benchmark and write its ledger; returns (record, path).

    ``memory_budget`` (MiB) arms the guardian's memory guard with the
    spill rung enabled — a breach migrates the repetition onto the
    out-of-core sharded backend (spilling under ``spill_dir``, default a
    private temp dir) instead of degrading toward abort; CI's
    forced-spill job runs the smoke bench this way and the spill shows
    up in the ledger's recovery block.  ``trace_out``/``perfetto_out``
    export the *last* repetition's trace as JSONL / Chrome trace-event
    JSON — the inputs ``repro report`` and Perfetto consume.

    ``telemetry`` (or a ``status_file``) attaches a fresh live sampler
    per repetition — counter samples land in that repetition's trace
    and the sampler's stats block lands on the stored repetition;
    ``memprof`` additionally attributes allocations per phase
    (tracemalloc; slows the timed region, so compare like with like).
    ``append_ledger_dir`` copies the written ledger to
    ``<dir>/BENCH_<name>-<UTC date>.json`` and prunes the directory to
    the newest ``keep_ledgers`` dated files — the feed ``repro trend``
    plots.
    """
    if reps < 1:
        raise ValueError("reps must be at least 1")
    graph = planted_partition_graph(n_vertices, seed=seed)
    own_spill_dir = None
    if memory_budget is not None and spill_dir is None:
        import tempfile

        spill_dir = own_spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
    backend_obj = None
    if backend == "sharded":
        from repro.parallel.backends import ShardedBackend

        backend_obj = ShardedBackend(spill_dir=spill_dir, n_shards=shards)
    elif backend is not None or n_workers > 1:
        backend_obj = create_backend(
            backend or "process-pool",
            n_workers=n_workers if n_workers > 1 else None,
        )
    record = RunRecord(
        name=name,
        graph={
            "name": f"planted-{n_vertices}",
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
        },
        config={
            "scorer": "modularity",
            "matcher": matcher,
            "contractor": contractor,
            "seed": seed,
            "backend": backend_obj.name if backend_obj is not None else "serial",
            "n_workers": backend_obj.n_workers if backend_obj is not None else 1,
            "audit": audit,
            "memory_budget_mb": memory_budget,
            # The tuner key exists only for auto runs, so fixed-kernel
            # ledgers keep comparing cleanly against pre-tuner baselines
            # (config_drift treats absent-on-both-sides as agreement).
            **(
                {"tuner": {"policy": CostModelPolicy.name}}
                if AUTO_KERNEL in (matcher, contractor)
                else {}
            ),
        },
        host=host_info(),
        created_unix=time.time(),
    )
    for _ in range(reps):
        tracer = Tracer()
        timeline = QualityTimeline()
        # Fresh guardian per repetition: the ladder position and audit
        # counters must not leak across timed runs.
        guardian = (
            RunGuardian(
                audit,
                memory_budget_mb=memory_budget,
                spill_dir=spill_dir,
                spill_shards=shards,
            )
            if audit != "off" or memory_budget is not None
            else None
        )
        sampler = None
        profiler = None
        if telemetry or status_file:
            from repro.obs.telemetry import TelemetrySampler

            sampler = TelemetrySampler(
                tracer,
                interval_s=telemetry_interval,
                status_path=status_file,
                meta={"command": "bench.smoke", "name": name},
            ).start()
        if memprof:
            from repro.obs.memprof import PhaseMemoryProfiler

            profiler = PhaseMemoryProfiler().start()
        t0 = time.perf_counter()
        try:
            run = run_with_trace(
                graph,
                graph_name=record.graph["name"],
                matcher=matcher,  # type: ignore[arg-type]
                contractor=contractor,  # type: ignore[arg-type]
                tracer=tracer,
                timeline=timeline,
                backend=backend_obj,
                guardian=guardian,
                telemetry=sampler,
                memprof=profiler,
            )
        except BaseException:
            # tracemalloc must not stay armed past a failed repetition
            if profiler is not None:
                profiler.stop()
            raise
        finally:
            if sampler is not None:
                sampler.stop()
        total_s = time.perf_counter() - t0
        record.repetitions.append(
            repetition_from_run(
                run,
                total_s,
                telemetry=sampler.stats() if sampler is not None else None,
                memory=profiler.stop() if profiler is not None else None,
            )
        )
    if own_spill_dir is not None:
        import shutil

        shutil.rmtree(own_spill_dir, ignore_errors=True)
    meta = {"command": "bench.smoke", "name": name, **record.graph}
    if trace_out:
        from repro.obs import write_trace

        write_trace(tracer, trace_out, meta=meta)
    if perfetto_out:
        from repro.obs.perfetto import write_perfetto

        write_perfetto(
            list(tracer.spans),
            perfetto_out,
            samples=list(tracer.counter_samples),
            meta=meta,
        )
    path = write_ledger(record, directory=directory)
    if append_ledger_dir is not None:
        append_dated_ledger(
            path, append_ledger_dir, name=name, keep=keep_ledgers
        )
    return record, path


def append_dated_ledger(
    ledger_path,
    directory: str,
    *,
    name: str = "smoke",
    keep: int = 30,
    date: str | None = None,
):
    """Copy a ledger into the dated trend feed, pruning to ``keep`` files.

    The copy lands at ``<directory>/BENCH_<name>-<UTC date>.json`` (one
    slot per day — a same-day rerun overwrites, so the feed tracks the
    latest state of each day, not every push).  Oldest dated files
    beyond ``keep`` are deleted; the date sits in the filename but
    ordering uses each ledger's own ``created_unix``, the same key
    ``repro trend`` sorts by.  Returns the destination path.
    """
    import shutil
    from pathlib import Path

    if keep < 1:
        raise ValueError("keep must be at least 1")
    src = Path(ledger_path)
    dest_dir = Path(directory)
    dest_dir.mkdir(parents=True, exist_ok=True)
    stamp = date or time.strftime("%Y-%m-%d", time.gmtime())
    dest = dest_dir / f"BENCH_{name}-{stamp}.json"
    shutil.copyfile(src, dest)
    dated = sorted(dest_dir.glob(f"BENCH_{name}-*.json"))
    for stale in dated[: max(0, len(dated) - keep)]:
        stale.unlink(missing_ok=True)
    return dest


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="run the ledger-emitting smoke benchmark",
    )
    parser.add_argument("--name", default="smoke", help="ledger name (BENCH_<name>.json)")
    parser.add_argument("--vertices", type=int, default=4000)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--matcher",
        default="worklist",
        choices=[*kernel_names("matcher"), AUTO_KERNEL],
        help="matching kernel, or 'auto' for per-level tuner selection",
    )
    parser.add_argument(
        "--contractor",
        default="bucket",
        choices=[*kernel_names("contractor"), AUTO_KERNEL],
        help="contraction kernel, or 'auto' for per-level tuner selection",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=backend_names(),
        help="execution backend for the scoring phase "
        "(default: serial, or process-pool when --workers > 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the backend (implies process-pool)",
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for the ledger file"
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write the last repetition's JSONL trace (repro report input)",
    )
    parser.add_argument(
        "--perfetto-out",
        metavar="PATH",
        default=None,
        help="write the last repetition's Chrome trace-event timeline",
    )
    parser.add_argument(
        "--audit",
        default="sample",
        choices=AUDIT_MODES,
        help="run-guardian invariant audit strictness (default: sample; "
        "the smoke gate proves its overhead stays inside the compare "
        "noise floor)",
    )
    parser.add_argument(
        "--memory-budget",
        type=float,
        metavar="MB",
        default=None,
        help="arm the guardian's memory guard with the spill rung: a "
        "breach migrates the run onto the out-of-core sharded backend "
        "(CI's forced-spill job; see docs/OUT_OF_CORE.md)",
    )
    parser.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="directory for spill stores (default: a private temp dir)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help="edge-shard count for spilled graphs (default 8)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="attach the live resource sampler per repetition (counter "
        "samples in the trace, stats block in the ledger)",
    )
    parser.add_argument(
        "--telemetry-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="sampling period for --telemetry (default: 0.05 — the smoke "
        "graph is small, so sample fast enough to catch it)",
    )
    parser.add_argument(
        "--status-file",
        metavar="PATH",
        default=None,
        help="write the status.json heartbeat `repro watch` renders "
        "(implies --telemetry)",
    )
    parser.add_argument(
        "--memprof",
        action="store_true",
        help="attribute memory per phase with tracemalloc (slows the "
        "timed region; only compare against ledgers run the same way)",
    )
    parser.add_argument(
        "--append-ledger-dir",
        metavar="DIR",
        default=None,
        help="also copy the ledger to <DIR>/BENCH_<name>-<UTC date>.json "
        "for `repro trend`, pruning to --keep-ledgers files",
    )
    parser.add_argument(
        "--keep-ledgers",
        type=int,
        default=30,
        metavar="N",
        help="dated ledgers retained in --append-ledger-dir (default: 30)",
    )
    args = parser.parse_args(argv)
    record, path = run_smoke(
        name=args.name,
        n_vertices=args.vertices,
        reps=args.reps,
        seed=args.seed,
        matcher=args.matcher,
        contractor=args.contractor,
        backend=args.backend,
        n_workers=args.workers,
        directory=args.out_dir,
        audit=args.audit,
        memory_budget=args.memory_budget,
        spill_dir=args.spill_dir,
        shards=args.shards,
        trace_out=args.trace_out,
        perfetto_out=args.perfetto_out,
        telemetry=args.telemetry,
        telemetry_interval=args.telemetry_interval,
        status_file=args.status_file,
        memprof=args.memprof,
        append_ledger_dir=args.append_ledger_dir,
        keep_ledgers=args.keep_ledgers,
    )
    print(render_ledger(record))
    print(f"\nledger written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
