"""repro — Scalable Multi-threaded Community Detection in Social Networks.

A complete reimplementation of Riedy, Meyerhenke & Bader (IPDPSW 2012):
parallel agglomerative community detection (score → match → contract) on
the paper's bucketed parity-hashed edge representation, together with its
workload generators, sequential quality baselines, and trace-driven models
of the five evaluation platforms (two Cray XMT generations, three Intel
OpenMP servers) that regenerate the paper's scaling results.

Quickstart::

    from repro import detect_communities, generators, metrics

    graph = generators.planted_partition_graph(5_000, seed=42)
    result = detect_communities(graph)
    q = metrics.modularity(graph, result.partition)
    print(result.n_communities, q)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro import (
    analysis,
    baselines,
    bench,
    core,
    generators,
    graph,
    kernels,
    metrics,
    obs,
    parallel,
    platform,
    pregel,
    resilience,
    spmatrix,
    util,
)
from repro.core import (
    AgglomerationResult,
    ConductanceScorer,
    ModularityScorer,
    TerminationCriteria,
    WeightScorer,
    detect_communities,
    refine_partition,
)
from repro.graph import CommunityGraph, from_edges, largest_component
from repro.metrics import Partition, coverage, modularity
from repro.obs import Tracer, read_trace, render_profile, write_trace
from repro.platform import TraceRecorder, get_machine, simulate_time
from repro.resilience import RecoveryReport, RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # subpackages
    "analysis",
    "baselines",
    "bench",
    "core",
    "generators",
    "graph",
    "kernels",
    "metrics",
    "obs",
    "parallel",
    "platform",
    "pregel",
    "resilience",
    "spmatrix",
    "util",
    # headline API
    "detect_communities",
    "AgglomerationResult",
    "ModularityScorer",
    "ConductanceScorer",
    "WeightScorer",
    "TerminationCriteria",
    "refine_partition",
    "CommunityGraph",
    "from_edges",
    "largest_component",
    "Partition",
    "modularity",
    "coverage",
    "TraceRecorder",
    "get_machine",
    "simulate_time",
    "Tracer",
    "write_trace",
    "read_trace",
    "render_profile",
    "RecoveryReport",
    "RetryPolicy",
]
