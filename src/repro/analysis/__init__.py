"""Community post-processing: the paper's motivating use case.

§I: communities "can be analyzed more thoroughly or form the basis for
multi-level algorithms" and "[open] smaller portions of the data to
current analysis tools."  This subpackage provides that downstream
tooling: per-community summaries, community subgraph extraction, the
community quotient graph, and dendrogram level selection.
"""

from repro.analysis.summary import CommunityStats, community_summary
from repro.analysis.extraction import (
    community_members,
    community_subgraph,
    quotient_graph,
)
from repro.analysis.levels import best_modularity_level, level_profile
from repro.analysis.hierarchy import HierarchyNode, hierarchical_communities

__all__ = [
    "CommunityStats",
    "community_summary",
    "community_members",
    "community_subgraph",
    "quotient_graph",
    "best_modularity_level",
    "level_profile",
    "HierarchyNode",
    "hierarchical_communities",
]
