"""Extracting communities for downstream analysis."""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.graph.subgraph import induced_subgraph
from repro.metrics.partition import Partition

__all__ = ["community_members", "community_subgraph", "quotient_graph"]


def community_members(partition: Partition, community: int) -> np.ndarray:
    """Vertex ids of one community (alias of ``Partition.members``)."""
    return partition.members(community)


def community_subgraph(
    graph: CommunityGraph, partition: Partition, community: int
) -> tuple[CommunityGraph, np.ndarray]:
    """The induced subgraph of one community, densely renumbered.

    Returns ``(subgraph, original_ids)`` — the paper's "opening smaller
    portions of the data to current analysis tools".
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    return induced_subgraph(graph, partition.members(community))


def quotient_graph(
    graph: CommunityGraph, partition: Partition
) -> CommunityGraph:
    """The community quotient graph: one vertex per community.

    Edge weights count the inter-community edge weight; self weights hold
    the intra-community weight — exactly the community-graph invariant the
    agglomeration maintains, but computable for *any* partition.
    """
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    from repro.core.contraction import _build_contracted

    return _build_contracted(
        graph, partition.labels, partition.n_communities
    )
