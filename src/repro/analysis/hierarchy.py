"""Recursive (hierarchical) community detection.

§I: communities "can be analyzed more thoroughly or form the basis for
multi-level algorithms".  This driver applies :func:`detect_communities`
recursively: any community larger than ``max_size`` is extracted as a
subgraph and clustered again, producing a tree of nested communities.

The tree is returned as a :class:`HierarchyNode` whose leaves partition
the input vertex set; :meth:`HierarchyNode.flat_partition` flattens any
cut of the tree back to a vertex labeling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.agglomeration import detect_communities
from repro.core.scoring import EdgeScorer
from repro.core.termination import TerminationCriteria
from repro.graph.graph import CommunityGraph
from repro.graph.subgraph import induced_subgraph
from repro.metrics.partition import Partition
from repro.types import VERTEX_DTYPE

__all__ = ["HierarchyNode", "hierarchical_communities"]


@dataclass
class HierarchyNode:
    """One community in the hierarchy.

    ``vertices`` are input-graph ids; ``children`` is empty for leaves.
    """

    vertices: np.ndarray
    depth: int
    children: list["HierarchyNode"] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.vertices)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list["HierarchyNode"]:
        """All leaf nodes under (and including) this node."""
        if self.is_leaf:
            return [self]
        out: list[HierarchyNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def max_depth(self) -> int:
        if self.is_leaf:
            return self.depth
        return max(child.max_depth() for child in self.children)

    def flat_partition(self, n_vertices: int) -> Partition:
        """Leaf communities as a flat vertex labeling."""
        labels = np.full(n_vertices, -1, dtype=VERTEX_DTYPE)
        for k, leaf in enumerate(self.leaves()):
            labels[leaf.vertices] = k
        if np.any(labels < 0):
            raise ValueError("hierarchy does not cover all vertices")
        return Partition(labels)


def hierarchical_communities(
    graph: CommunityGraph,
    *,
    max_size: int,
    max_depth: int = 8,
    scorer: EdgeScorer | None = None,
    termination: TerminationCriteria | None = None,
) -> HierarchyNode:
    """Recursively cluster until every leaf has at most ``max_size``
    vertices or ``max_depth`` is reached (or a level stops splitting).

    Returns the root node covering all vertices.
    """
    if max_size < 1:
        raise ValueError("max_size must be at least 1")
    if max_depth < 0:
        raise ValueError("max_depth must be non-negative")
    root = HierarchyNode(
        vertices=np.arange(graph.n_vertices, dtype=VERTEX_DTYPE), depth=0
    )
    _split(root, graph, max_size, max_depth, scorer, termination)
    return root


def _split(
    node: HierarchyNode,
    graph: CommunityGraph,
    max_size: int,
    max_depth: int,
    scorer: EdgeScorer | None,
    termination: TerminationCriteria | None,
) -> None:
    if node.size <= max_size or node.depth >= max_depth:
        return
    sub, ids = induced_subgraph(graph, node.vertices)
    result = detect_communities(sub, scorer, termination=termination)
    if result.n_communities <= 1:
        return  # indivisible: stays a leaf
    for c in range(result.n_communities):
        members = ids[result.partition.members(c)]
        child = HierarchyNode(
            vertices=members.astype(VERTEX_DTYPE), depth=node.depth + 1
        )
        node.children.append(child)
        _split(child, graph, max_size, max_depth, scorer, termination)
