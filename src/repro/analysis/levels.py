"""Dendrogram level selection.

The agglomeration driver stops on coverage or at a local maximum, but the
whole merge history is retained; these helpers pick the *best* level
after the fact — useful when the run overshoots (e.g. coverage-terminated
runs on graphs whose modularity peaks earlier).
"""

from __future__ import annotations

import numpy as np

from repro.core.dendrogram import Dendrogram
from repro.graph.graph import CommunityGraph
from repro.metrics.modularity import modularity
from repro.metrics.partition import Partition

__all__ = ["level_profile", "best_modularity_level"]


def level_profile(
    graph: CommunityGraph, dendrogram: Dendrogram
) -> list[tuple[int, int, float]]:
    """(level, n_communities, modularity) for every dendrogram level,
    including level 0 (all singletons)."""
    out = []
    for level in range(dendrogram.n_levels + 1):
        p = dendrogram.partition_at(level)
        out.append((level, p.n_communities, modularity(graph, p)))
    return out


def best_modularity_level(
    graph: CommunityGraph, dendrogram: Dendrogram
) -> tuple[int, Partition]:
    """The dendrogram level with maximum modularity (ties: coarsest)."""
    profile = level_profile(graph, dendrogram)
    qs = np.array([q for _, _, q in profile])
    best = int(np.flatnonzero(qs >= qs.max() - 1e-15)[-1])
    return best, dendrogram.partition_at(best)
