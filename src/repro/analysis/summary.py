"""Per-community statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.metrics.conductance import conductances
from repro.metrics.partition import Partition
from repro.util.arrays import group_reduce_sum

__all__ = ["CommunityStats", "community_summary"]


@dataclass(frozen=True)
class CommunityStats:
    """Vectorized per-community statistics (arrays indexed by community).

    Attributes
    ----------
    sizes:
        Vertex count per community.
    internal_weight:
        Edge weight inside each community (self weights included).
    cut_weight:
        Edge weight crossing each community's boundary.
    volume:
        ``2 * internal + cut`` — the modularity volume.
    internal_density:
        ``internal / (size choose 2)``; 0 for singletons.
    conductance:
        Normalized cut per community.
    """

    sizes: np.ndarray
    internal_weight: np.ndarray
    cut_weight: np.ndarray
    volume: np.ndarray
    internal_density: np.ndarray
    conductance: np.ndarray

    @property
    def n_communities(self) -> int:
        return len(self.sizes)

    def as_rows(self, top: int | None = None) -> list[list]:
        """Rows (community id, size, internal, cut, density, conductance)
        sorted by size descending — ready for table formatting."""
        order = np.argsort(-self.sizes, kind="stable")
        if top is not None:
            order = order[:top]
        return [
            [
                int(c),
                int(self.sizes[c]),
                float(self.internal_weight[c]),
                float(self.cut_weight[c]),
                round(float(self.internal_density[c]), 4),
                round(float(self.conductance[c]), 4),
            ]
            for c in order
        ]


def community_summary(
    graph: CommunityGraph, partition: Partition
) -> CommunityStats:
    """Compute all per-community statistics in a few vectorized passes."""
    if partition.n_vertices != graph.n_vertices:
        raise ValueError("partition size does not match graph")
    labels = partition.labels
    k = partition.n_communities
    e = graph.edges

    sizes = partition.sizes()

    li = labels[e.ei]
    lj = labels[e.ej]
    internal_mask = li == lj
    internal = group_reduce_sum(li[internal_mask], e.w[internal_mask], k)
    internal += group_reduce_sum(labels, graph.self_weights, k)

    cross = ~internal_mask
    cut = group_reduce_sum(li[cross], e.w[cross], k)
    cut += group_reduce_sum(lj[cross], e.w[cross], k)

    volume = 2.0 * internal + cut

    possible = sizes * (sizes - 1) / 2.0
    density = np.zeros(k)
    np.divide(internal, possible, out=density, where=possible > 0)

    return CommunityStats(
        sizes=sizes,
        internal_weight=internal,
        cut_weight=cut,
        volume=volume,
        internal_density=density,
        conductance=conductances(graph, partition),
    )
