"""Fault-tolerant execution: retries, checkpoints, and fault injection.

The paper's pipeline is a long-running score → match → contract loop over
shared arrays; this subpackage is what lets a real deployment of it
survive the failures that loop meets in production:

* :mod:`repro.resilience.retry` — the :class:`RetryPolicy` escalation
  ladder the hardened :class:`repro.parallel.SharedArrayPool` follows
  when a worker dies, stalls, or emits garbage;
* :mod:`repro.resilience.report` — :class:`RecoveryReport`, the recovery
  accounting attached to every
  :class:`~repro.core.agglomeration.AgglomerationResult`;
* :mod:`repro.resilience.checkpoint` — atomic, schema-versioned,
  validated level checkpoints and the resume path
  (:class:`CheckpointManager`);
* :mod:`repro.resilience.faults` — deterministic, seeded fault injectors
  (:class:`FaultPlan`) driving the chaos test suite;
* :mod:`repro.resilience.invariants` — the :class:`InvariantAuditor`
  re-deriving the paper's conservation laws after every contraction;
* :mod:`repro.resilience.guardian` — :class:`RunGuardian`, the run-level
  watchdog + adaptive degradation ladder supervising the whole pipeline.

See ``docs/RESILIENCE.md`` for the failure-mode catalogue and policies.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    CheckpointState,
    quarantine_file,
)
from repro.resilience.faults import FaultPlan, FaultSpec, truncate_file
from repro.resilience.guardian import (
    NULL_GUARDIAN,
    NullGuardian,
    RunGuardian,
    as_guardian,
)
from repro.resilience.invariants import (
    AUDIT_MODES,
    InvariantAuditor,
    lower_audit_mode,
)
from repro.resilience.report import RecoveryReport
from repro.resilience.retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "RecoveryReport",
    "FaultPlan",
    "FaultSpec",
    "truncate_file",
    "CheckpointManager",
    "CheckpointState",
    "CHECKPOINT_SCHEMA_VERSION",
    "quarantine_file",
    "AUDIT_MODES",
    "InvariantAuditor",
    "lower_audit_mode",
    "RunGuardian",
    "NullGuardian",
    "NULL_GUARDIAN",
    "as_guardian",
]
