"""Recovery accounting: what the fault-tolerant layer had to do.

A :class:`RecoveryReport` is a plain mutable record threaded through the
execution stack: the pool increments it as chunks die, time out, produce
invalid output, or fall back to in-process execution, the run guardian
records watchdog breaches and degradation-ladder transitions, and the
driver adds checkpoint activity.  The final report rides on
:class:`repro.core.agglomeration.AgglomerationResult`, so a caller can
always answer "did this run recover from anything?" without parsing logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["RecoveryReport"]


@dataclass
class RecoveryReport:
    """Counts of recovery actions taken during one run.

    Attributes
    ----------
    retries:
        Chunk re-executions scheduled after a failed attempt.
    worker_deaths:
        Worker processes that exited with a non-zero code (crash/kill).
    chunk_timeouts:
        Chunk attempts terminated for exceeding the per-chunk deadline.
    invalid_chunks:
        Chunk attempts whose output failed parent-side validation
        (e.g. NaN/inf scores in the shared output slice).
    degraded_chunks:
        Chunks that exhausted their retry budget and ran in-process.
    chunk_failures:
        Chunks whose output was *still* invalid after the in-process
        fallback — the :class:`~repro.errors.ChunkFailureError`
        escalations at the unrecoverable end of the retry ladder.
    guardian_breaches:
        Run-guardian watchdog breaches (phase deadline, matching stall,
        memory budget) and invariant-audit interventions.
    spills:
        Guardian spill-rung migrations: the run was moved onto the
        out-of-core sharded backend after a memory-budget breach.
    checkpoints_written:
        Level checkpoints persisted by the driver.
    checkpoints_invalid:
        Checkpoint files skipped during resume because they were
        truncated or failed validation (quarantined to ``*.corrupt``).
    wal_torn_records:
        Write-ahead-log records truncated or quarantined during
        recovery because their frame failed its CRC/length checks — the
        torn tail of a crash, never applied to state.
    wal_replayed:
        Journaled batches re-applied from the WAL tail after a restart
        (the records newer than the last durable snapshot).
    stream_reruns:
        Full from-scratch re-detections taken by the streaming
        service's degradation ladder (quality drift past threshold,
        repair deadline overrun, or a repair that kept failing).
    resumed_from_level:
        Level count restored from a checkpoint, or ``None`` when the run
        started fresh.
    ladder:
        Ordered degradation-ladder transitions taken by the run guardian
        or the streaming service (e.g.
        ``"serial-backend(phase_deadline@level0)"``,
        ``"full-rerun(drift@seq12)"``), empty when the run never
        degraded.
    """

    retries: int = 0
    worker_deaths: int = 0
    chunk_timeouts: int = 0
    invalid_chunks: int = 0
    degraded_chunks: int = 0
    chunk_failures: int = 0
    guardian_breaches: int = 0
    spills: int = 0
    checkpoints_written: int = 0
    checkpoints_invalid: int = 0
    wal_torn_records: int = 0
    wal_replayed: int = 0
    stream_reruns: int = 0
    resumed_from_level: int | None = None
    ladder: list[str] = field(default_factory=list)

    def any_recovery(self) -> bool:
        """True when the run survived at least one fault, degraded, or
        resumed."""
        return (
            self.retries > 0
            or self.worker_deaths > 0
            or self.chunk_timeouts > 0
            or self.invalid_chunks > 0
            or self.degraded_chunks > 0
            or self.chunk_failures > 0
            or self.guardian_breaches > 0
            or self.spills > 0
            or self.checkpoints_invalid > 0
            or self.wal_torn_records > 0
            or self.wal_replayed > 0
            or self.stream_reruns > 0
            or self.resumed_from_level is not None
            or bool(self.ladder)
        )

    def merge(self, other: "RecoveryReport") -> "RecoveryReport":
        """Fold another report's counts into this one (in place)."""
        for f in fields(self):
            if f.name == "resumed_from_level":
                if other.resumed_from_level is not None:
                    self.resumed_from_level = other.resumed_from_level
            elif f.name == "ladder":
                self.ladder.extend(other.ladder)
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )
        return self

    def as_dict(self) -> dict:
        """JSON-ready dump (attached to trace metadata, the benchmark
        ledger, and CLI output)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["ladder"] = list(self.ladder)
        return out

    def summary(self) -> str:
        """One-line human summary for CLI stderr."""
        parts = [
            f"retries={self.retries}",
            f"worker_deaths={self.worker_deaths}",
            f"timeouts={self.chunk_timeouts}",
            f"invalid_chunks={self.invalid_chunks}",
            f"degraded={self.degraded_chunks}",
            f"checkpoints={self.checkpoints_written}",
        ]
        if self.chunk_failures:
            parts.append(f"chunk_failures={self.chunk_failures}")
        if self.guardian_breaches:
            parts.append(f"guardian_breaches={self.guardian_breaches}")
        if self.spills:
            parts.append(f"spills={self.spills}")
        if self.ladder:
            parts.append(f"ladder=[{' -> '.join(self.ladder)}]")
        if self.checkpoints_invalid:
            parts.append(f"checkpoints_invalid={self.checkpoints_invalid}")
        if self.wal_torn_records:
            parts.append(f"wal_torn_records={self.wal_torn_records}")
        if self.wal_replayed:
            parts.append(f"wal_replayed={self.wal_replayed}")
        if self.stream_reruns:
            parts.append(f"stream_reruns={self.stream_reruns}")
        if self.resumed_from_level is not None:
            parts.append(f"resumed_from_level={self.resumed_from_level}")
        return ", ".join(parts)
