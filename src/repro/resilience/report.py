"""Recovery accounting: what the fault-tolerant layer had to do.

A :class:`RecoveryReport` is a plain mutable record threaded through the
execution stack: the pool increments it as chunks die, time out, produce
invalid output, or fall back to in-process execution, and the driver adds
checkpoint activity.  The final report rides on
:class:`repro.core.agglomeration.AgglomerationResult`, so a caller can
always answer "did this run recover from anything?" without parsing logs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["RecoveryReport"]


@dataclass
class RecoveryReport:
    """Counts of recovery actions taken during one run.

    Attributes
    ----------
    retries:
        Chunk re-executions scheduled after a failed attempt.
    worker_deaths:
        Worker processes that exited with a non-zero code (crash/kill).
    chunk_timeouts:
        Chunk attempts terminated for exceeding the per-chunk deadline.
    invalid_chunks:
        Chunk attempts whose output failed parent-side validation
        (e.g. NaN/inf scores in the shared output slice).
    degraded_chunks:
        Chunks that exhausted their retry budget and ran in-process.
    checkpoints_written:
        Level checkpoints persisted by the driver.
    checkpoints_invalid:
        Checkpoint files skipped during resume because they were
        truncated or failed validation.
    resumed_from_level:
        Level count restored from a checkpoint, or ``None`` when the run
        started fresh.
    """

    retries: int = 0
    worker_deaths: int = 0
    chunk_timeouts: int = 0
    invalid_chunks: int = 0
    degraded_chunks: int = 0
    checkpoints_written: int = 0
    checkpoints_invalid: int = 0
    resumed_from_level: int | None = None

    def any_recovery(self) -> bool:
        """True when the run survived at least one fault or resumed."""
        return (
            self.retries > 0
            or self.worker_deaths > 0
            or self.chunk_timeouts > 0
            or self.invalid_chunks > 0
            or self.degraded_chunks > 0
            or self.checkpoints_invalid > 0
            or self.resumed_from_level is not None
        )

    def merge(self, other: "RecoveryReport") -> "RecoveryReport":
        """Fold another report's counts into this one (in place)."""
        for f in fields(self):
            if f.name == "resumed_from_level":
                if other.resumed_from_level is not None:
                    self.resumed_from_level = other.resumed_from_level
            else:
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )
        return self

    def as_dict(self) -> dict:
        """JSON-ready dump (attached to trace metadata and CLI output)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        """One-line human summary for CLI stderr."""
        parts = [
            f"retries={self.retries}",
            f"worker_deaths={self.worker_deaths}",
            f"timeouts={self.chunk_timeouts}",
            f"invalid_chunks={self.invalid_chunks}",
            f"degraded={self.degraded_chunks}",
            f"checkpoints={self.checkpoints_written}",
        ]
        if self.checkpoints_invalid:
            parts.append(f"checkpoints_invalid={self.checkpoints_invalid}")
        if self.resumed_from_level is not None:
            parts.append(f"resumed_from_level={self.resumed_from_level}")
        return ", ".join(parts)
