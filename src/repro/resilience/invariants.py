"""Invariant auditor: conservation-law checks over the contraction loop.

The paper's agglomeration (§IV) preserves a small set of algebraic
invariants by construction — total edge weight is constant under
contraction, absorbed intra-merge weight reappears as self-loop weight,
the relabel map is a surjection onto the contracted vertex set, and the
matching is a valid (maximal) matching.  The engine additionally tracks
modularity and coverage incrementally via the contracted graph's
closed-form expressions, which must agree with a from-scratch recompute
on the input graph.

:class:`InvariantAuditor` re-derives these properties *independently*
after each contract phase and raises
:class:`~repro.errors.InvariantViolation` with a forensic dump (level,
phase, check name, offending array summaries) the moment one fails —
turning silent partition corruption into a loud, located error.

Strictness modes
----------------
``off``
    No checks (the auditor is inert).
``sample``
    Every cheap aggregate check each level — O(|V| + |E|) scalar
    reductions: weight conservation, aggregate self-loop accounting,
    mapping surjection, matching validity — plus the expensive
    from-scratch quality recompute every ``sample_every`` levels.
``full``
    Everything, every level: per-community self-loop accounting,
    matching maximality, and the quality recompute at each level.

The degradation ladder lowers strictness ``full → sample → off`` under
pressure (see :mod:`repro.resilience.guardian`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import InvariantViolation
from repro.graph.graph import CommunityGraph
from repro.metrics.coverage import coverage as recompute_coverage
from repro.metrics.modularity import modularity as recompute_modularity
from repro.metrics.partition import Partition
from repro.types import NO_VERTEX

if TYPE_CHECKING:  # avoid importing repro.core from the resilience package
    from repro.core.matching import MatchingResult

__all__ = [
    "AUDIT_MODES",
    "InvariantAuditor",
    "lower_audit_mode",
    "check_weight_conservation",
    "check_self_loop_accounting",
    "check_mapping_surjection",
    "check_matching_validity",
    "check_matching_maximality",
    "check_tracked_quality",
]

#: Valid strictness modes, weakest first.
AUDIT_MODES = ("off", "sample", "full")


def lower_audit_mode(mode: str) -> str:
    """One rung down the strictness ladder (``off`` stays ``off``)."""
    idx = AUDIT_MODES.index(mode)
    return AUDIT_MODES[max(0, idx - 1)]


def _summary(name: str, arr: np.ndarray) -> str:
    """Compact forensic description of an array for violation messages."""
    arr = np.asarray(arr)
    if arr.size == 0:
        return f"{name}: shape={arr.shape} dtype={arr.dtype} (empty)"
    head = np.array2string(arr[:8], threshold=8)
    parts = [
        f"{name}: shape={arr.shape} dtype={arr.dtype}",
        f"min={arr.min()} max={arr.max()}",
    ]
    if np.issubdtype(arr.dtype, np.floating):
        parts.append(f"sum={float(arr.sum()):.6g}")
        n_bad = int(np.count_nonzero(~np.isfinite(arr)))
        if n_bad:
            parts.append(f"non_finite={n_bad}")
    parts.append(f"head={head}")
    return " ".join(parts)


def _close(a: float, b: float, tolerance: float) -> bool:
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))


# --------------------------------------------------------------------------
# Individual checks.  Each raises InvariantViolation with local forensics;
# the auditor prefixes level/phase context and stamps attributes.
# --------------------------------------------------------------------------


def check_weight_conservation(
    graph_before: CommunityGraph,
    graph_after: CommunityGraph,
    *,
    tolerance: float = 1e-6,
) -> None:
    """Total edge weight (cross + self) is invariant under contraction."""
    before = graph_before.total_weight()
    after = graph_after.total_weight()
    if not _close(before, after, tolerance):
        raise InvariantViolation(
            "total edge weight not conserved by contraction: "
            f"before={before!r} after={after!r} "
            f"drift={after - before!r} (tolerance={tolerance}); "
            + _summary("after.edges.w", graph_after.edges.w)
            + "; "
            + _summary("after.self_weights", graph_after.self_weights)
        )


def check_self_loop_accounting(
    graph_before: CommunityGraph,
    mapping: np.ndarray,
    graph_after: CommunityGraph,
    *,
    tolerance: float = 1e-6,
    per_community: bool = False,
) -> None:
    """Contracted self-loop weight equals carried-over self weight plus
    the intra-merge edge weight absorbed by the contraction.

    The aggregate (scalar) form compares total sums; ``per_community``
    recomputes the expected self-weight array and compares elementwise.
    """
    e = graph_before.edges
    k = graph_after.n_vertices
    ni = mapping[e.ei]
    nj = mapping[e.ej]
    loops = ni == nj
    absorbed = float(e.w[loops].sum())
    expected_total = float(graph_before.self_weights.sum()) + absorbed
    actual_total = float(graph_after.self_weights.sum())
    if not _close(expected_total, actual_total, tolerance):
        raise InvariantViolation(
            "self-loop weight does not equal carried self weight plus "
            f"absorbed intra-merge weight: expected={expected_total!r} "
            f"actual={actual_total!r} (absorbed={absorbed!r}, "
            f"tolerance={tolerance}); "
            + _summary("after.self_weights", graph_after.self_weights)
        )
    if per_community:
        expected = np.bincount(
            mapping, weights=graph_before.self_weights, minlength=k
        )
        if loops.any():
            expected += np.bincount(ni[loops], weights=e.w[loops], minlength=k)
        bad = ~np.isclose(
            expected, graph_after.self_weights, rtol=tolerance, atol=tolerance
        )
        if bad.any():
            idx = np.flatnonzero(bad)
            raise InvariantViolation(
                f"per-community self-loop accounting broken for "
                f"{len(idx)} of {k} communities "
                f"(first offenders: {idx[:8].tolist()}); "
                + _summary("expected", expected[idx])
                + "; "
                + _summary("actual", graph_after.self_weights[idx])
            )


def check_mapping_surjection(
    mapping: np.ndarray, n_before: int, n_after: int
) -> None:
    """The relabel map is a total function onto the new vertex set."""
    if len(mapping) != n_before:
        raise InvariantViolation(
            f"relabel mapping covers {len(mapping)} vertices, "
            f"expected {n_before}; " + _summary("mapping", mapping)
        )
    if not np.issubdtype(np.asarray(mapping).dtype, np.integer):
        raise InvariantViolation(
            "relabel mapping is not integral; " + _summary("mapping", mapping)
        )
    if n_before == 0:
        if n_after != 0:
            raise InvariantViolation(
                f"empty mapping cannot be surjective onto {n_after} vertices"
            )
        return
    lo = int(mapping.min())
    hi = int(mapping.max())
    if lo < 0 or hi >= n_after:
        raise InvariantViolation(
            f"relabel mapping range [{lo}, {hi}] escapes the new vertex "
            f"set [0, {n_after}); " + _summary("mapping", mapping)
        )
    hit = np.bincount(mapping, minlength=n_after)
    missing = np.flatnonzero(hit == 0)
    if len(missing):
        raise InvariantViolation(
            f"relabel mapping is not surjective: {len(missing)} of "
            f"{n_after} new vertices unhit "
            f"(first: {missing[:8].tolist()}); "
            + _summary("mapping", mapping)
        )


def check_matching_validity(
    graph: CommunityGraph, matching: MatchingResult
) -> None:
    """The matching is a symmetric involution with no overlapping pairs."""
    partner = matching.partner
    n = graph.n_vertices
    if len(partner) != n:
        raise InvariantViolation(
            f"matching partner array covers {len(partner)} vertices, "
            f"expected {n}; " + _summary("partner", partner)
        )
    matched = partner != NO_VERTEX
    verts = np.flatnonzero(matched)
    if np.any(partner[verts] == verts):
        bad = verts[partner[verts] == verts]
        raise InvariantViolation(
            f"self-matched vertices: {bad[:8].tolist()}; "
            + _summary("partner", partner)
        )
    if len(verts) and (
        int(partner[verts].min()) < 0 or int(partner[verts].max()) >= n
    ):
        raise InvariantViolation(
            "matching partner ids escape the vertex set; "
            + _summary("partner", partner)
        )
    bad = verts[partner[partner[verts]] != verts]
    if len(bad):
        # partner[a] = b without partner[b] = a means two pairs overlap
        # on b (or the involution is otherwise broken).
        raise InvariantViolation(
            f"matching is not a symmetric involution (overlapping pairs) "
            f"at vertices {bad[:8].tolist()}; "
            + _summary("partner", partner)
        )
    me = matching.matched_edges
    if 2 * len(me) != int(np.count_nonzero(matched)):
        raise InvariantViolation(
            f"matched_edges lists {len(me)} pairs but partner marks "
            f"{int(np.count_nonzero(matched))} matched endpoints; "
            + _summary("matched_edges", me)
        )
    e = graph.edges
    if len(me) and not np.all(partner[e.ei[me]] == e.ej[me]):
        raise InvariantViolation(
            "matched_edges disagree with the partner array; "
            + _summary("matched_edges", me)
        )


def check_matching_maximality(
    graph: CommunityGraph, scores: np.ndarray, matching: MatchingResult
) -> None:
    """No positive-scored edge has both endpoints unmatched."""
    e = graph.edges
    matched = matching.partner != NO_VERTEX
    both_free = ~matched[e.ei] & ~matched[e.ej]
    missed = np.flatnonzero((scores > 0) & both_free)
    if len(missed):
        raise InvariantViolation(
            f"matching is not maximal: {len(missed)} positive-scored "
            f"edges have both endpoints free "
            f"(first edge indices: {missed[:8].tolist()}); "
            + _summary("scores[missed]", scores[missed])
        )


def check_tracked_quality(
    input_graph: CommunityGraph,
    partition: Partition,
    *,
    tracked_modularity: float,
    tracked_coverage: float,
    tolerance: float = 1e-6,
) -> None:
    """The engine's incrementally tracked modularity/coverage agree with
    a from-scratch recompute on the input graph."""
    q = recompute_modularity(input_graph, partition)
    if not np.isfinite(tracked_modularity) or abs(q - tracked_modularity) > max(
        tolerance, tolerance * abs(q)
    ):
        raise InvariantViolation(
            f"tracked modularity {tracked_modularity!r} diverges from "
            f"from-scratch recompute {q!r} "
            f"(drift={tracked_modularity - q!r}, tolerance={tolerance})"
        )
    cov = recompute_coverage(input_graph, partition)
    if not np.isfinite(tracked_coverage) or abs(
        cov - tracked_coverage
    ) > max(tolerance, tolerance * abs(cov)):
        raise InvariantViolation(
            f"tracked coverage {tracked_coverage!r} diverges from "
            f"from-scratch recompute {cov!r} "
            f"(drift={tracked_coverage - cov!r}, tolerance={tolerance})"
        )


# --------------------------------------------------------------------------
# The auditor.
# --------------------------------------------------------------------------


class InvariantAuditor:
    """Runs the conservation checks at a configurable strictness.

    Parameters
    ----------
    mode:
        ``off``, ``sample`` (default), or ``full`` — see the module
        docstring for what each tier runs.
    tolerance:
        Relative/absolute tolerance for floating-point conservation and
        quality-drift comparisons.
    sample_every:
        In ``sample`` mode, run the expensive quality recompute at every
        ``sample_every``-th level (level 0 always included).
    """

    def __init__(
        self,
        mode: str = "sample",
        *,
        tolerance: float = 1e-6,
        sample_every: int = 4,
    ) -> None:
        if mode not in AUDIT_MODES:
            raise ValueError(
                f"audit mode must be one of {AUDIT_MODES}, got {mode!r}"
            )
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.mode = mode
        self.tolerance = tolerance
        self.sample_every = sample_every
        #: Total individual checks executed (visible in guardian metrics).
        self.checks_run = 0
        #: Violations raised (sticks at the first one unless caught).
        self.violations = 0

    def lower(self) -> str:
        """Drop one strictness rung in place; returns the new mode."""
        self.mode = lower_audit_mode(self.mode)
        return self.mode

    # -------------------------------------------------------------- internals
    def _run(
        self, check: str, phase: str, level: int, fn: Callable[[], None]
    ) -> None:
        self.checks_run += 1
        try:
            fn()
        except InvariantViolation as exc:
            self.violations += 1
            wrapped = InvariantViolation(
                f"[level {level} / phase {phase} / check {check}] {exc}"
            )
            wrapped.level = level  # type: ignore[attr-defined]
            wrapped.phase = phase  # type: ignore[attr-defined]
            wrapped.check = check  # type: ignore[attr-defined]
            raise wrapped from exc

    def _quality_due(self, level: int) -> bool:
        if self.mode == "full":
            return True
        return level % self.sample_every == 0

    # ------------------------------------------------------------------ audits
    def audit_contraction(
        self,
        level: int,
        *,
        graph_before: CommunityGraph,
        scores: np.ndarray,
        matching: MatchingResult,
        mapping: np.ndarray,
        graph_after: CommunityGraph,
        limited: bool = False,
    ) -> int:
        """Audit one completed contract phase; returns checks executed.

        ``limited=True`` marks a matching deliberately truncated by the
        driver's pair cap (``min_communities``) — maximality is skipped
        for it, since the truncation un-matches pairs by design.
        """
        if self.mode == "off":
            return 0
        before = self.checks_run
        tol = self.tolerance
        self._run(
            "weight_conservation",
            "contract",
            level,
            lambda: check_weight_conservation(
                graph_before, graph_after, tolerance=tol
            ),
        )
        self._run(
            "self_loop_accounting",
            "contract",
            level,
            lambda: check_self_loop_accounting(
                graph_before,
                mapping,
                graph_after,
                tolerance=tol,
                per_community=self.mode == "full",
            ),
        )
        self._run(
            "mapping_surjection",
            "contract",
            level,
            lambda: check_mapping_surjection(
                mapping, graph_before.n_vertices, graph_after.n_vertices
            ),
        )
        self._run(
            "matching_validity",
            "match",
            level,
            lambda: check_matching_validity(graph_before, matching),
        )
        if self.mode == "full" and not limited:
            self._run(
                "matching_maximality",
                "match",
                level,
                lambda: check_matching_maximality(
                    graph_before, scores, matching
                ),
            )
        return self.checks_run - before

    def audit_quality(
        self,
        level: int,
        *,
        input_graph: CommunityGraph,
        partition: Partition,
        tracked_modularity: float,
        tracked_coverage: float,
    ) -> int:
        """Cross-check tracked quality against a from-scratch recompute.

        Sampled in ``sample`` mode (every ``sample_every`` levels),
        every level in ``full`` mode; returns checks executed (0 when
        skipped).
        """
        if self.mode == "off" or not self._quality_due(level):
            return 0
        before = self.checks_run
        tol = self.tolerance
        self._run(
            "tracked_quality",
            "contract",
            level,
            lambda: check_tracked_quality(
                input_graph,
                partition,
                tracked_modularity=tracked_modularity,
                tracked_coverage=tracked_coverage,
                tolerance=tol,
            ),
        )
        return self.checks_run - before
