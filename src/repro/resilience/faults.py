"""Deterministic fault injection for the chaos test suite.

A :class:`FaultPlan` maps ``(chunk_index, attempt)`` pairs to
:class:`FaultSpec` actions.  The pool's worker wrapper consults the plan
*inside the forked child*, so an injected fault behaves exactly like the
production failure it models:

* ``kill`` — the worker calls ``os._exit`` before touching the output
  (a crashed/OOM-killed process);
* ``delay`` — the worker sleeps past the per-chunk deadline (a wedged or
  starved process);
* ``corrupt`` — the worker computes its chunk, then overwrites the output
  slice with NaN (silent data corruption).

Plans are static data built ahead of the run, so injection is fully
deterministic: :meth:`FaultPlan.seeded` derives every decision from
``(seed, chunk_index, attempt)`` alone, independent of scheduling order.
Faults fire only in worker processes — the parent's in-process degraded
path executes the same chunk function directly, faults bypassed, which is
what makes "kill every worker attempt" a recoverable scenario.

:func:`truncate_file` is the checkpoint-side injector: it chops a file
mid-byte to model a torn write, which resume must detect and skip.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Literal

import numpy as np

__all__ = ["FaultSpec", "FaultPlan", "truncate_file"]

FaultKind = Literal["kill", "delay", "corrupt"]


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do to a specific chunk attempt."""

    kind: FaultKind
    delay_s: float = 0.0
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "delay", "corrupt"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults keyed by (chunk_index, attempt)."""

    faults: dict[tuple[int, int], FaultSpec] = field(default_factory=dict)

    def decide(self, chunk_index: int, attempt: int) -> FaultSpec | None:
        """The fault to inject for this chunk attempt, if any."""
        return self.faults.get((chunk_index, attempt))

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    def add(
        self, chunk_index: int, attempt: int, spec: FaultSpec
    ) -> "FaultPlan":
        """Schedule one fault; chainable."""
        self.faults[(chunk_index, attempt)] = spec
        return self

    # -------------------------------------------------------------- builders
    @classmethod
    def kill_first_attempt(
        cls, chunks: Iterable[int], *, exit_code: int = 17
    ) -> "FaultPlan":
        """Kill the first attempt of each listed chunk; retries succeed."""
        return cls(
            {
                (c, 0): FaultSpec("kill", exit_code=exit_code)
                for c in chunks
            }
        )

    @classmethod
    def kill_every_attempt(
        cls, chunks: Iterable[int], *, attempts: int, exit_code: int = 17
    ) -> "FaultPlan":
        """Kill all ``attempts`` worker attempts — forces degraded mode."""
        return cls(
            {
                (c, a): FaultSpec("kill", exit_code=exit_code)
                for c in chunks
                for a in range(attempts)
            }
        )

    @classmethod
    def delay_first_attempt(
        cls, chunks: Iterable[int], *, delay_s: float
    ) -> "FaultPlan":
        """Stall the first attempt of each listed chunk past a deadline."""
        return cls(
            {(c, 0): FaultSpec("delay", delay_s=delay_s) for c in chunks}
        )

    @classmethod
    def corrupt_first_attempt(cls, chunks: Iterable[int]) -> "FaultPlan":
        """NaN-corrupt the first attempt's output of each listed chunk."""
        return cls({(c, 0): FaultSpec("corrupt") for c in chunks})

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_chunks: int,
        *,
        p_kill: float = 0.0,
        p_delay: float = 0.0,
        p_corrupt: float = 0.0,
        delay_s: float = 0.05,
        faulty_attempts: int = 1,
    ) -> "FaultPlan":
        """Draw one independent fault decision per (chunk, attempt).

        Each decision uses a generator keyed by ``(seed, chunk, attempt)``,
        so the plan is a pure function of its arguments — rebuilding it
        with the same seed yields the identical schedule regardless of
        execution order, which is what makes chaos runs reproducible.
        """
        if min(p_kill, p_delay, p_corrupt) < 0 or (
            p_kill + p_delay + p_corrupt
        ) > 1.0:
            raise ValueError(
                "fault probabilities must be non-negative and sum to <= 1"
            )
        faults: dict[tuple[int, int], FaultSpec] = {}
        for chunk in range(n_chunks):
            for attempt in range(faulty_attempts):
                r = float(
                    np.random.default_rng([seed, chunk, attempt]).random()
                )
                if r < p_kill:
                    faults[(chunk, attempt)] = FaultSpec("kill")
                elif r < p_kill + p_delay:
                    faults[(chunk, attempt)] = FaultSpec(
                        "delay", delay_s=delay_s
                    )
                elif r < p_kill + p_delay + p_corrupt:
                    faults[(chunk, attempt)] = FaultSpec("corrupt")
        return cls(faults)


def truncate_file(path: str | os.PathLike, *, keep_fraction: float = 0.5) -> int:
    """Truncate a file in place to model a torn/partial write.

    Returns the number of bytes kept.  ``keep_fraction=0`` empties the
    file entirely.  Used by the chaos suite against checkpoint files; the
    loader must classify the result as invalid and fall back.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep
