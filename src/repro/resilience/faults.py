"""Deterministic fault injection for the chaos test suite.

A :class:`FaultPlan` maps ``(chunk_index, attempt)`` pairs to
:class:`FaultSpec` actions.  The pool's worker wrapper consults the plan
*inside the forked child*, so an injected fault behaves exactly like the
production failure it models:

* ``kill`` — the worker calls ``os._exit`` before touching the output
  (a crashed/OOM-killed process);
* ``delay`` — the worker sleeps past the per-chunk deadline (a wedged or
  starved process);
* ``corrupt`` — the worker computes its chunk, then overwrites the output
  slice with NaN (silent data corruption).

A plan can additionally target whole *pipeline phases* — keyed by
``(phase, level)`` and consulted by the run guardian
(:class:`repro.resilience.RunGuardian`) as the phase starts — so the
chaos suite can exercise the run-level watchdog and degradation ladder
deterministically:

* ``stall`` — an injected sleep inside a phase kernel (a wedged scoring
  or matching loop), tripping the phase-deadline watchdog;
* ``memory_pressure`` — a transient large allocation held for the
  duration of the phase (a memory blow-up), tripping the memory-budget
  guard.

Plans are static data built ahead of the run, so injection is fully
deterministic: :meth:`FaultPlan.seeded` derives every decision from
``(seed, chunk_index, attempt)`` alone, independent of scheduling order.
Chunk faults fire only in worker processes — the parent's in-process
degraded path executes the same chunk function directly, faults
bypassed, which is what makes "kill every worker attempt" a recoverable
scenario.  Phase faults fire in the driver process, before the phase's
kernel runs, and never touch its output.

A third fault family targets *durable artifacts on disk* — keyed by
``(artifact, index)`` and consulted by the out-of-core spill writer
(:mod:`repro.spmatrix.spill`) — so the chaos suite can prove a spilled
run never trusts torn shard data:

* ``enospc`` — the spill write raises ``OSError(ENOSPC)`` before any
  byte lands (a full disk), which the spill rung must absorb by falling
  back to the rest of the degradation ladder;
* ``torn_write`` — the spill file is truncated *after* its atomic
  rename (modeling at-rest corruption / a lost sync), which the
  checksummed header must catch on reopen as
  :class:`~repro.errors.SpillError`.

A fourth fault family targets the *streaming detection service* — keyed
by ``(crash_point, index)`` and consulted by
:class:`repro.stream.service.DetectionService` and its write-ahead log
at named protocol points (``wal-append``, ``apply``, ``snapshot`` …) —
so the kill-chaos suite can prove crash-equivalence deterministically:

* ``sigkill`` — the process sends itself ``SIGKILL`` at the crash
  point: no cleanup handlers, no flushes, exactly the ``kill -9`` the
  recovery contract promises to survive.  The ``index`` counts visits
  to that point within the process's lifetime, so "die on the third
  WAL append" is reproducible.

:func:`truncate_file` is the checkpoint-side injector: it chops a file
mid-byte to model a torn write, which resume must detect and skip.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Literal

import numpy as np

__all__ = ["FaultSpec", "FaultPlan", "truncate_file"]

FaultKind = Literal[
    "kill",
    "delay",
    "corrupt",
    "stall",
    "memory_pressure",
    "enospc",
    "torn_write",
    "sigkill",
]

#: Kinds injected inside forked worker processes (chunk faults).
CHUNK_FAULT_KINDS = ("kill", "delay", "corrupt")
#: Kinds injected in the driver process at phase entry (phase faults).
PHASE_FAULT_KINDS = ("stall", "memory_pressure")
#: Kinds injected at durable-artifact writes (disk faults).
DISK_FAULT_KINDS = ("enospc", "torn_write")
#: Kinds injected at streaming-service crash points (service faults).
SERVICE_FAULT_KINDS = ("sigkill",)


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do to a chunk attempt or a phase.

    ``delay_s`` parameterizes ``delay`` and ``stall``; ``alloc_mb`` the
    size of the transient ``memory_pressure`` allocation; ``exit_code``
    the ``kill`` exit status; ``keep_fraction`` how much of a
    ``torn_write`` file survives.
    """

    kind: FaultKind
    delay_s: float = 0.0
    exit_code: int = 17
    alloc_mb: float = 64.0
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in (
            CHUNK_FAULT_KINDS
            + PHASE_FAULT_KINDS
            + DISK_FAULT_KINDS
            + SERVICE_FAULT_KINDS
        ):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.alloc_mb <= 0:
            raise ValueError("alloc_mb must be positive")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults.

    ``faults`` keys chunk faults by ``(chunk_index, attempt)``;
    ``phase_faults`` keys phase faults by ``(phase_name, level)``;
    ``disk_faults`` keys disk faults by ``(artifact_name, index)``;
    ``service_faults`` keys service faults by ``(crash_point, index)``.
    """

    faults: dict[tuple[int, int], FaultSpec] = field(default_factory=dict)
    phase_faults: dict[tuple[str, int], FaultSpec] = field(
        default_factory=dict
    )
    disk_faults: dict[tuple[str, int], FaultSpec] = field(
        default_factory=dict
    )
    service_faults: dict[tuple[str, int], FaultSpec] = field(
        default_factory=dict
    )

    def decide(self, chunk_index: int, attempt: int) -> FaultSpec | None:
        """The fault to inject for this chunk attempt, if any."""
        return self.faults.get((chunk_index, attempt))

    def decide_phase(self, phase: str, level: int) -> FaultSpec | None:
        """The fault to inject at this phase of this level, if any."""
        return self.phase_faults.get((phase, level))

    def decide_disk(self, artifact: str, index: int) -> FaultSpec | None:
        """The fault to inject at this durable-artifact write, if any."""
        return self.disk_faults.get((artifact, index))

    def decide_service(self, point: str, index: int) -> FaultSpec | None:
        """The fault to inject at this service crash point, if any."""
        return self.service_faults.get((point, index))

    @property
    def n_faults(self) -> int:
        return (
            len(self.faults)
            + len(self.phase_faults)
            + len(self.disk_faults)
            + len(self.service_faults)
        )

    def add(
        self, chunk_index: int, attempt: int, spec: FaultSpec
    ) -> "FaultPlan":
        """Schedule one chunk fault; chainable."""
        if spec.kind not in CHUNK_FAULT_KINDS:
            raise ValueError(
                f"{spec.kind!r} is a phase fault; use add_phase()"
            )
        self.faults[(chunk_index, attempt)] = spec
        return self

    def add_phase(self, phase: str, level: int, spec: FaultSpec) -> "FaultPlan":
        """Schedule one phase fault; chainable."""
        if spec.kind not in PHASE_FAULT_KINDS:
            raise ValueError(
                f"{spec.kind!r} is a chunk fault; use add()"
            )
        self.phase_faults[(phase, level)] = spec
        return self

    def add_disk(self, artifact: str, index: int, spec: FaultSpec) -> "FaultPlan":
        """Schedule one disk fault; chainable."""
        if spec.kind not in DISK_FAULT_KINDS:
            raise ValueError(
                f"{spec.kind!r} is not a disk fault; use add()/add_phase()"
            )
        self.disk_faults[(artifact, index)] = spec
        return self

    def add_service(
        self, point: str, index: int, spec: FaultSpec
    ) -> "FaultPlan":
        """Schedule one service crash-point fault; chainable."""
        if spec.kind not in SERVICE_FAULT_KINDS:
            raise ValueError(
                f"{spec.kind!r} is not a service fault; use "
                "add()/add_phase()/add_disk()"
            )
        self.service_faults[(point, index)] = spec
        return self

    # -------------------------------------------------------------- builders
    @classmethod
    def kill_first_attempt(
        cls, chunks: Iterable[int], *, exit_code: int = 17
    ) -> "FaultPlan":
        """Kill the first attempt of each listed chunk; retries succeed."""
        return cls(
            {
                (c, 0): FaultSpec("kill", exit_code=exit_code)
                for c in chunks
            }
        )

    @classmethod
    def kill_every_attempt(
        cls, chunks: Iterable[int], *, attempts: int, exit_code: int = 17
    ) -> "FaultPlan":
        """Kill all ``attempts`` worker attempts — forces degraded mode."""
        return cls(
            {
                (c, a): FaultSpec("kill", exit_code=exit_code)
                for c in chunks
                for a in range(attempts)
            }
        )

    @classmethod
    def delay_first_attempt(
        cls, chunks: Iterable[int], *, delay_s: float
    ) -> "FaultPlan":
        """Stall the first attempt of each listed chunk past a deadline."""
        return cls(
            {(c, 0): FaultSpec("delay", delay_s=delay_s) for c in chunks}
        )

    @classmethod
    def corrupt_first_attempt(cls, chunks: Iterable[int]) -> "FaultPlan":
        """NaN-corrupt the first attempt's output of each listed chunk."""
        return cls({(c, 0): FaultSpec("corrupt") for c in chunks})

    @classmethod
    def stall_phase(
        cls, phase: str, levels: Iterable[int], *, delay_s: float
    ) -> "FaultPlan":
        """Inject a sleep into ``phase`` at each listed level.

        Exercises the run guardian's phase-deadline watchdog: with a
        deadline shorter than ``delay_s`` the stalled phase breaches on
        completion and the degradation ladder takes a rung.
        """
        return cls(
            phase_faults={
                (phase, lv): FaultSpec("stall", delay_s=delay_s)
                for lv in levels
            }
        )

    @classmethod
    def pressure_phase(
        cls, phase: str, levels: Iterable[int], *, alloc_mb: float = 64.0
    ) -> "FaultPlan":
        """Hold a transient ``alloc_mb``-MiB allocation through ``phase``
        at each listed level (exercises the memory-budget guard)."""
        return cls(
            phase_faults={
                (phase, lv): FaultSpec("memory_pressure", alloc_mb=alloc_mb)
                for lv in levels
            }
        )

    @classmethod
    def enospc_on_spill(
        cls, artifact: str, indices: Iterable[int]
    ) -> "FaultPlan":
        """Fail the listed spill writes with ``OSError(ENOSPC)``.

        ``artifact`` names the writer (the spill layer uses the level's
        artifact tag, e.g. ``"spill-graph"``); the spill rung must treat
        the failed spill as unavailable and fall back to the remaining
        degradation ladder instead of crashing the run.
        """
        return cls(
            disk_faults={(artifact, i): FaultSpec("enospc") for i in indices}
        )

    @classmethod
    def tear_spill(
        cls,
        artifact: str,
        indices: Iterable[int],
        *,
        keep_fraction: float = 0.5,
    ) -> "FaultPlan":
        """Truncate the listed spill files right after their atomic write.

        Models at-rest corruption: the rename succeeded but the payload
        is torn.  The checksummed header must classify the file as
        :class:`~repro.errors.SpillError` on reopen — a spilled run
        either recovers or aborts cleanly, never reads torn data.
        """
        return cls(
            disk_faults={
                (artifact, i): FaultSpec(
                    "torn_write", keep_fraction=keep_fraction
                )
                for i in indices
            }
        )

    @classmethod
    def sigkill_at(cls, point: str, indices: Iterable[int]) -> "FaultPlan":
        """SIGKILL the process at the listed visits to ``point``.

        ``point`` names a streaming-service crash point (``wal-append``,
        ``apply``, ``snapshot``, ``post-snapshot``, ``wal-rerun``);
        ``indices`` count visits to it within one process lifetime.
        The kill is a real ``os.kill(os.getpid(), SIGKILL)`` — no
        ``atexit``, no flush, no destructor runs — which is exactly what
        the crash-equivalence gate in the kill-chaos suite recovers
        from.
        """
        return cls(
            service_faults={(point, i): FaultSpec("sigkill") for i in indices}
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_chunks: int,
        *,
        p_kill: float = 0.0,
        p_delay: float = 0.0,
        p_corrupt: float = 0.0,
        delay_s: float = 0.05,
        faulty_attempts: int = 1,
    ) -> "FaultPlan":
        """Draw one independent fault decision per (chunk, attempt).

        Each decision uses a generator keyed by ``(seed, chunk, attempt)``,
        so the plan is a pure function of its arguments — rebuilding it
        with the same seed yields the identical schedule regardless of
        execution order, which is what makes chaos runs reproducible.
        """
        if min(p_kill, p_delay, p_corrupt) < 0 or (
            p_kill + p_delay + p_corrupt
        ) > 1.0:
            raise ValueError(
                "fault probabilities must be non-negative and sum to <= 1"
            )
        faults: dict[tuple[int, int], FaultSpec] = {}
        for chunk in range(n_chunks):
            for attempt in range(faulty_attempts):
                r = float(
                    np.random.default_rng([seed, chunk, attempt]).random()
                )
                if r < p_kill:
                    faults[(chunk, attempt)] = FaultSpec("kill")
                elif r < p_kill + p_delay:
                    faults[(chunk, attempt)] = FaultSpec(
                        "delay", delay_s=delay_s
                    )
                elif r < p_kill + p_delay + p_corrupt:
                    faults[(chunk, attempt)] = FaultSpec("corrupt")
        return cls(faults)


def truncate_file(path: str | os.PathLike, *, keep_fraction: float = 0.5) -> int:
    """Truncate a file in place to model a torn/partial write.

    Returns the number of bytes kept.  ``keep_fraction=0`` empties the
    file entirely.  Used by the chaos suite against checkpoint files; the
    loader must classify the result as invalid and fall back.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    size = os.path.getsize(path)
    keep = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return keep
