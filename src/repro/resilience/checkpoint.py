"""Level-granular checkpoint/resume for the agglomeration loop.

After each contraction level the driver persists everything the loop
needs to continue: the current community graph, the dendrogram's
contraction maps, per-community member counts, and the per-level stats.
One level is one self-contained ``.npz`` file, so a checkpoint directory
is a history of the run and resume picks the newest file that validates.

Durability rules:

* **atomic** — each checkpoint is written to a temporary file in the same
  directory, fsynced, then ``os.replace``-d into place, so a crash
  mid-write can never leave a half-written file under the final name;
* **schema-versioned** — files carry a schema number checked on load;
* **validated on reload** — the graph re-runs its representation
  invariants and the dendrogram maps are re-pushed through the same
  checks used during the live run, so a corrupt or truncated checkpoint
  is classified :class:`~repro.errors.CheckpointError` instead of
  producing a silently wrong resume.

``load_latest`` falls back: invalid files are *quarantined* — renamed to
``<name>.corrupt`` so they are re-validated at most once, not on every
resume — counted, and skipped; the newest *valid* level wins.  An empty
or fully corrupt directory resumes as a fresh run.  The quarantined
paths are logged once per resume so the corruption stays visible
without spamming a warning per file per restart.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.graph.edgelist import EdgeList
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE
from repro.util.atomicio import atomic_write
from repro.util.log import get_logger

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointState",
    "CheckpointManager",
    "quarantine_file",
]

#: Version of the on-disk checkpoint schema.
CHECKPOINT_SCHEMA_VERSION = 1

_FILE_RE = re.compile(r"^level_(\d{5})\.ckpt\.npz$")

_log = get_logger("resilience.checkpoint")


def quarantine_file(path: str | os.PathLike) -> Path:
    """Rename an invalid durable artifact to ``<name>.corrupt``.

    The rename takes the file out of every discovery glob (checkpoint
    levels, snapshot sequences, WAL segments) so a known-bad file is
    validated exactly once instead of on every resume, while the bytes
    stay on disk for post-mortem inspection.  An existing quarantine
    target is suffixed with a counter rather than overwritten — two
    crashes must not destroy each other's forensics.  Returns the
    quarantine path.
    """
    src = Path(os.fspath(path))
    target = src.with_name(src.name + ".corrupt")
    n = 1
    while target.exists():
        target = src.with_name(f"{src.name}.corrupt.{n}")
        n += 1
    os.replace(src, target)
    return target


@dataclass
class CheckpointState:
    """Everything needed to continue the agglomeration loop at a level.

    Attributes
    ----------
    level:
        Number of *completed* contraction levels.
    graph:
        The community graph entering level ``level``.
    maps:
        The dendrogram's old→new contraction maps, one per completed level.
    member_counts:
        Input vertices per current community (the ``max_community_size``
        veto state).
    level_stats:
        Per-level statistics as JSON-ready dicts (the driver rebuilds its
        ``LevelStats`` records from these).
    scorer_name:
        Name of the scorer that produced the checkpoint, recorded so a
        resume under a different scorer can be flagged by callers.
    """

    level: int
    graph: CommunityGraph
    maps: list[np.ndarray]
    member_counts: np.ndarray
    level_stats: list[dict] = field(default_factory=list)
    scorer_name: str = ""

    @property
    def n_input_vertices(self) -> int:
        return len(self.maps[0]) if self.maps else self.graph.n_vertices


class CheckpointManager:
    """Reads and writes level checkpoints in one directory.

    Parameters
    ----------
    directory:
        Checkpoint directory; created if missing.
    keep:
        Newest checkpoints to retain after each save (older levels are
        pruned).  ``None`` keeps everything.  At least two are kept by
        default so a truncated newest file still leaves a fallback.
    """

    def __init__(
        self, directory: str | os.PathLike, *, keep: int | None = 3
    ) -> None:
        if keep is not None and keep < 1:
            raise ValueError("keep must be at least 1 (or None)")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # ---------------------------------------------------------------- paths
    def path_for(self, level: int) -> Path:
        return self.directory / f"level_{level:05d}.ckpt.npz"

    def levels_on_disk(self) -> list[int]:
        """Checkpoint levels present (sorted ascending; tmp files ignored)."""
        out = []
        for name in os.listdir(self.directory):
            m = _FILE_RE.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    # ----------------------------------------------------------------- save
    def save(self, state: CheckpointState) -> Path:
        """Atomically persist one level checkpoint; returns its path."""
        if state.level != len(state.maps):
            raise ValueError(
                f"state.level={state.level} but {len(state.maps)} maps given"
            )
        final = self.path_for(state.level)
        e = state.graph.edges
        arrays: dict[str, np.ndarray] = {
            "schema": np.int64(CHECKPOINT_SCHEMA_VERSION),
            "level": np.int64(state.level),
            "n_input_vertices": np.int64(state.n_input_vertices),
            "n_vertices": np.int64(e.n_vertices),
            "ei": e.ei,
            "ej": e.ej,
            "w": e.w,
            "bucket_start": e.bucket_start,
            "bucket_end": e.bucket_end,
            "self_weights": state.graph.self_weights,
            "member_counts": state.member_counts,
            "n_maps": np.int64(len(state.maps)),
            "stats_json": np.str_(json.dumps(state.level_stats)),
            "scorer_name": np.str_(state.scorer_name),
        }
        for k, mapping in enumerate(state.maps):
            arrays[f"map_{k:05d}"] = np.asarray(mapping, dtype=VERTEX_DTYPE)
        with atomic_write(final, mode="wb") as fh:
            np.savez_compressed(fh, **arrays)
        self._prune()
        return final

    def _prune(self) -> None:
        if self.keep is None:
            return
        levels = self.levels_on_disk()
        for lvl in levels[: -self.keep]:
            try:
                self.path_for(lvl).unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # ----------------------------------------------------------------- load
    def load_level(self, level: int) -> CheckpointState:
        """Load and validate one level; raises :class:`CheckpointError`."""
        path = self.path_for(level)
        try:
            with np.load(path, allow_pickle=False) as data:
                return self._decode(path, data)
        except CheckpointError:
            raise
        except (OSError, zipfile.BadZipFile, KeyError, ValueError) as exc:
            raise CheckpointError(
                f"{path}: unreadable or truncated checkpoint: {exc}"
            ) from exc

    def _decode(self, path: Path, data) -> CheckpointState:
        schema = int(data["schema"])
        if schema != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"{path}: schema version {schema} unsupported "
                f"(expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        level = int(data["level"])
        n_maps = int(data["n_maps"])
        if n_maps != level:
            raise CheckpointError(
                f"{path}: level {level} checkpoint carries {n_maps} maps"
            )
        edges = EdgeList(
            ei=data["ei"],
            ej=data["ej"],
            w=data["w"],
            n_vertices=int(data["n_vertices"]),
            bucket_start=data["bucket_start"],
            bucket_end=data["bucket_end"],
        )
        graph = CommunityGraph(edges, data["self_weights"])
        try:
            graph.validate()
        except Exception as exc:
            raise CheckpointError(
                f"{path}: checkpointed graph fails validation: {exc}"
            ) from exc

        maps = [data[f"map_{k:05d}"] for k in range(n_maps)]
        # Re-push through the live-run validation: each map must shrink
        # its domain and compose down to exactly the checkpointed graph.
        from repro.core.dendrogram import Dendrogram

        n_input = int(data["n_input_vertices"])
        dendro = Dendrogram(n_input)
        try:
            for mapping in maps:
                dendro.push(mapping)
        except ValueError as exc:
            raise CheckpointError(
                f"{path}: contraction maps fail validation: {exc}"
            ) from exc
        if dendro.communities_at(level) != graph.n_vertices:
            raise CheckpointError(
                f"{path}: maps compose to {dendro.communities_at(level)} "
                f"communities but graph has {graph.n_vertices}"
            )

        member_counts = np.asarray(data["member_counts"], dtype=VERTEX_DTYPE)
        if len(member_counts) != graph.n_vertices:
            raise CheckpointError(
                f"{path}: member_counts length {len(member_counts)} != "
                f"{graph.n_vertices} communities"
            )
        if int(member_counts.sum()) != n_input:
            raise CheckpointError(
                f"{path}: member_counts sum {int(member_counts.sum())} != "
                f"{n_input} input vertices"
            )

        try:
            stats = json.loads(str(data["stats_json"]))
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path}: level stats are not valid JSON: {exc}"
            ) from exc
        if not isinstance(stats, list) or len(stats) != level:
            raise CheckpointError(
                f"{path}: expected {level} level-stat records, "
                f"got {len(stats) if isinstance(stats, list) else type(stats)}"
            )
        return CheckpointState(
            level=level,
            graph=graph,
            maps=maps,
            member_counts=member_counts,
            level_stats=stats,
            scorer_name=str(data["scorer_name"]),
        )

    def load_latest(self) -> tuple[CheckpointState | None, int]:
        """The newest valid checkpoint, plus the count of invalid files.

        Invalid (truncated, corrupt, wrong-schema) files are quarantined
        — renamed to ``<name>.corrupt`` so the next resume never re-reads
        known-bad bytes — and the quarantined paths are logged once.
        ``(None, n_invalid)`` means nothing usable was found and the
        caller should start fresh.
        """
        n_invalid = 0
        quarantined: list[str] = []
        state: CheckpointState | None = None
        for level in reversed(self.levels_on_disk()):
            try:
                state = self.load_level(level)
                break
            except CheckpointError as exc:
                n_invalid += 1
                try:
                    quarantined.append(
                        str(quarantine_file(self.path_for(level)))
                    )
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
                _log.debug("invalid checkpoint: %s", exc)
        if quarantined:
            _log.warning(
                "quarantined %d invalid checkpoint file(s): %s",
                len(quarantined),
                ", ".join(quarantined),
            )
        return state, n_invalid
