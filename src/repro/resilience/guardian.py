"""Run guardian: phase watchdog, invariant audits, degradation ladder.

PR 2's supervised pool keeps individual *chunks* alive; nothing defended
the *run*.  :class:`RunGuardian` is that missing tier — a
:class:`~repro.core.engine.RunContext` service the engine consults at
phase boundaries:

* **Watchdog** — per-phase soft deadlines (the engine cannot preempt an
  in-process kernel, so a breach is detected when the phase completes
  and degrades *subsequent* work), matching-stall detection (many
  passes, little merge progress), and a memory-budget guard sampling
  resident set size against a configurable ceiling.
* **Invariant audits** — delegated to
  :class:`~repro.resilience.invariants.InvariantAuditor`; a failed
  conservation check raises
  :class:`~repro.errors.InvariantViolation` immediately (corruption is
  never degraded around).
* **Degradation ladder** — each watchdog breach takes the next
  applicable rung instead of dying::

      spill to the out-of-core sharded backend
          (memory breaches only; requires ``spill_dir``)
      process-pool backend -> serial backend
      chunk size halving (backend rechunked)
      audit strictness lowering (full -> sample -> off)
      checkpoint-and-raise RunAbortedError

  The spill rung is the out-of-core escape hatch: when the guardian is
  configured with a ``spill_dir`` and a memory-budget breach fires, the
  live run is migrated onto the sharded backend
  (:class:`~repro.parallel.backends.ShardedBackend`) — subsequent
  levels stream the graph from checksummed on-disk shards with an
  ``O(V + shard)`` anonymous working set, and results stay
  bit-identical (docs/OUT_OF_CORE.md).  Abort is thereby demoted to the
  genuine last resort.  Every transition lands in
  :attr:`RecoveryReport.ladder`, the ``guardian.breaches`` /
  ``guardian.degradations`` / ``guardian.spills`` counters, a
  ``guardian_breach`` (and ``guardian_spill``) span, and a
  :class:`~repro.errors.GuardianBreach` warning — degraded runs finish,
  but never silently.

The default construction path (``guardian=None`` everywhere) resolves to
the shared :data:`NULL_GUARDIAN`, whose hooks are no-ops — the unguarded
pipeline pays nothing, and backend parity stays bit-identical.

Deterministic chaos testing hooks in through
:attr:`~repro.resilience.faults.FaultPlan.phase_faults`: ``stall`` sleeps
at phase entry, ``memory_pressure`` holds a transient allocation across
the phase so the RSS sample sees it.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import GuardianBreach, RunAbortedError
from repro.resilience.faults import FaultPlan
from repro.resilience.invariants import InvariantAuditor
from repro.resilience.report import RecoveryReport
from repro.util.log import get_logger
from repro.util.memprobe import rss_anon_mb, trim_memory

if TYPE_CHECKING:  # engine imports this module; never the reverse at runtime
    from repro.core.engine import RunContext
    from repro.core.matching import MatchingResult
    from repro.graph.graph import CommunityGraph
    from repro.metrics.partition import Partition

__all__ = ["RunGuardian", "NullGuardian", "NULL_GUARDIAN", "as_guardian"]

_log = get_logger("resilience.guardian")

#: Ladder rungs, softest first.  ``abort`` is always last and always
#: applicable.
LADDER_RUNGS = ("serial-backend", "halve-chunks", "lower-audit", "abort")

#: Cap on backend re-chunking: stop halving once a backend is already
#: split this many chunks per worker.
MAX_CHUNKS_PER_WORKER = 64


# Shared probe implementations live in repro.util.memprobe (the
# telemetry sampler uses the same ladder); these aliases keep the
# guardian's historical monkeypatch/import surface stable.
_rss_mb = rss_anon_mb
_trim_memory = trim_memory


class _PhaseGuard:
    """Context manager for one guarded phase execution.

    Injects any scheduled phase fault on entry; on *clean* exit samples
    elapsed time and RSS against the guardian's budgets (a propagating
    exception skips the checks — the failure is already louder than any
    breach).  An injected memory-pressure ballast is held until after
    the RSS sample so the guard observes it, then released.
    """

    def __init__(self, guardian: "RunGuardian", phase: str, level: int) -> None:
        self._g = guardian
        self._phase = phase
        self._level = level
        self._t0 = 0.0
        self._ballast: np.ndarray | None = None

    def __enter__(self) -> "_PhaseGuard":
        g = self._g
        # The clock starts before fault injection: an injected stall or
        # ballast stands in for the phase kernel misbehaving, so the
        # watchdog must observe it.
        self._t0 = time.monotonic()
        fault = (
            g.faults.decide_phase(self._phase, self._level)
            if g.faults is not None
            else None
        )
        if fault is not None:
            if fault.kind == "stall":
                time.sleep(fault.delay_s)
            elif fault.kind == "memory_pressure":
                n_words = max(1, int(fault.alloc_mb * 1024 * 1024) // 8)
                self._ballast = np.ones(n_words, dtype=np.float64)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        try:
            if exc_type is not None:
                return False
            g = self._g
            elapsed = time.monotonic() - self._t0
            if (
                g.phase_deadline_s is not None
                and elapsed > g.phase_deadline_s
            ):
                g._breach(
                    "phase_deadline",
                    self._level,
                    phase=self._phase,
                    detail=(
                        f"phase {self._phase!r} took {elapsed:.3f}s "
                        f"(deadline {g.phase_deadline_s:.3f}s)"
                    ),
                )
            if g.memory_budget_mb is not None:
                rss = _rss_mb()
                if rss is not None and rss > g.memory_budget_mb:
                    # Over budget on the raw sample: trim freed pages
                    # and re-check, so only *live* memory breaches.
                    _trim_memory()
                    rss = _rss_mb() or rss
                if rss is not None and rss > g.memory_budget_mb:
                    g._breach(
                        "memory_budget",
                        self._level,
                        phase=self._phase,
                        detail=(
                            f"rss {rss:.1f} MiB over budget "
                            f"{g.memory_budget_mb:.1f} MiB "
                            f"after phase {self._phase!r}"
                        ),
                    )
                elif rss is not None:
                    self._check_ramp(rss)
            return False
        finally:
            self._ballast = None

    def _check_ramp(self, rss: float) -> None:
        """Predictive memory guard: breach on trajectory, not level.

        Consumes the live-telemetry sampler's RSS ring buffer: when the
        recent ramp rate extrapolated over ``ramp_horizon_s`` crosses
        the budget, fire a ``memory_ramp`` breach *now* — the spill
        rung then migrates the run out of core while there is still
        headroom to do so, instead of waiting for the hard breach (by
        which point the spill itself may not fit).  Inert without an
        enabled sampler (the ring is the only data source) and after
        the run has already spilled.
        """
        g = self._g
        if g.ramp_horizon_s is None or g.memory_budget_mb is None:
            return
        if g._spilled:
            # The prediction's one job was buying time for the spill;
            # once out of core only the *hard* budget check matters —
            # a stale ramp estimate must not walk the regular ladder.
            return
        ctx = g._ctx
        telemetry = getattr(ctx, "telemetry", None) if ctx is not None else None
        if telemetry is None or not getattr(telemetry, "enabled", False):
            return
        ramp = telemetry.ramp_mb_s()
        if ramp is None or ramp <= 0:
            return
        predicted = rss + ramp * g.ramp_horizon_s
        if predicted <= g.memory_budget_mb:
            return
        g._breach(
            "memory_ramp",
            self._level,
            phase=self._phase,
            detail=(
                f"rss {rss:.1f} MiB climbing at {ramp:.1f} MiB/s would "
                f"cross the {g.memory_budget_mb:.1f} MiB budget within "
                f"{g.ramp_horizon_s:.1f}s (predicted {predicted:.1f} MiB) "
                f"after phase {self._phase!r}"
            ),
        )


class RunGuardian:
    """Supervises one agglomeration run; see the module docstring.

    Parameters
    ----------
    audit:
        Invariant-audit strictness: ``off``, ``sample`` (default), or
        ``full``.
    phase_deadline_s:
        Soft wall-clock budget per phase execution; ``None`` disables
        the deadline watchdog.
    memory_budget_mb:
        Resident-set ceiling in MiB sampled after each phase; ``None``
        disables the memory guard.
    ramp_horizon_s:
        Predictive lookahead for the memory guard: when a live-telemetry
        sampler is attached to the run, a breach fires as soon as the
        sampled RSS ramp rate would cross the budget within this many
        seconds — spilling *before* the hard ceiling is hit.  ``None``
        disables prediction; without a sampler the guard is purely
        reactive either way.
    stall_passes / stall_merge_fraction:
        A matching breaches the stall detector when it needed at least
        ``stall_passes`` worklist passes yet merged at most
        ``stall_merge_fraction`` of the level's vertices.
    tolerance / sample_every:
        Forwarded to :class:`InvariantAuditor`.
    spill_dir:
        Directory for the out-of-core spill rung.  ``None`` (default)
        disables the rung — memory breaches then take the pre-existing
        ladder unchanged.  When set, the first memory-budget breach
        migrates the run onto the sharded backend spilling under this
        directory instead of degrading toward abort.
    spill_shards:
        Shard count for the spill rung's store (``None`` uses the
        store's default).
    faults:
        Optional :class:`FaultPlan` whose phase faults this guardian
        injects (chaos testing only).

    A guardian instance supervises one run at a time: :meth:`bind`
    attaches it to a context and resets the ladder position.
    """

    def __init__(
        self,
        audit: str = "sample",
        *,
        phase_deadline_s: float | None = None,
        memory_budget_mb: float | None = None,
        ramp_horizon_s: float | None = 10.0,
        stall_passes: int = 128,
        stall_merge_fraction: float = 0.02,
        tolerance: float = 1e-6,
        sample_every: int = 4,
        spill_dir: str | os.PathLike | None = None,
        spill_shards: int | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if phase_deadline_s is not None and phase_deadline_s <= 0:
            raise ValueError("phase_deadline_s must be positive")
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive")
        if ramp_horizon_s is not None and ramp_horizon_s <= 0:
            raise ValueError("ramp_horizon_s must be positive")
        if stall_passes < 1:
            raise ValueError("stall_passes must be >= 1")
        if not 0.0 <= stall_merge_fraction <= 1.0:
            raise ValueError("stall_merge_fraction must be in [0, 1]")
        self.auditor = InvariantAuditor(
            audit, tolerance=tolerance, sample_every=sample_every
        )
        self.phase_deadline_s = phase_deadline_s
        self.memory_budget_mb = memory_budget_mb
        self.ramp_horizon_s = ramp_horizon_s
        if spill_shards is not None and spill_shards < 1:
            raise ValueError("spill_shards must be >= 1")
        self.stall_passes = stall_passes
        self.stall_merge_fraction = stall_merge_fraction
        self.spill_dir = spill_dir
        self.spill_shards = spill_shards
        self.faults = faults
        self._ctx: "RunContext" | None = None
        self._rung = 0
        self._spilled = False
        self._spill_level = -1
        self._input_graph: "CommunityGraph" | None = None

    # --------------------------------------------------------------- binding
    @property
    def enabled(self) -> bool:
        return True

    def bind(self, ctx: "RunContext", input_graph: "CommunityGraph") -> None:
        """Attach to a run: reset the ladder and remember the input graph
        (the reference for from-scratch quality recomputes)."""
        self._ctx = ctx
        self._input_graph = input_graph
        self._rung = 0
        self._spilled = False
        self._spill_level = -1

    def _require_ctx(self) -> "RunContext":
        if self._ctx is None:
            raise RuntimeError("RunGuardian used before bind()")
        return self._ctx

    # ---------------------------------------------------------------- hooks
    def phase(self, name: str, level: int) -> _PhaseGuard:
        """Guard one phase execution (use as a context manager)."""
        self._require_ctx()
        return _PhaseGuard(self, name, level)

    def observe_matching(
        self, level: int, matching: "MatchingResult", n_vertices: int
    ) -> None:
        """Stall detector: many passes, negligible merge progress."""
        self._require_ctx()
        if matching.passes < self.stall_passes:
            return
        if matching.n_pairs > self.stall_merge_fraction * n_vertices:
            return
        self._breach(
            "matching_stall",
            level,
            phase="match",
            detail=(
                f"matching needed {matching.passes} passes for "
                f"{matching.n_pairs} pairs over {n_vertices} vertices "
                f"(stall threshold: >= {self.stall_passes} passes and "
                f"<= {self.stall_merge_fraction:.3f} merge fraction)"
            ),
        )

    def audit_contraction(self, level: int, **kwargs: Any) -> None:
        """Run the post-contract conservation audits (see
        :meth:`InvariantAuditor.audit_contraction`); violations raise."""
        ctx = self._require_ctx()
        if self.auditor.mode == "off":
            return
        with ctx.tracer.span(
            "guardian_audit", level=level, mode=self.auditor.mode
        ) as sp:
            n = self.auditor.audit_contraction(level, **kwargs)
            sp.set(checks=n)
        ctx.tracer.counter("guardian.checks").inc(n)

    def audit_quality(
        self,
        level: int,
        *,
        partition: "Partition | Any",
        tracked_modularity: float,
        tracked_coverage: float,
    ) -> None:
        """Cross-check tracked quality against the bound input graph.

        ``partition`` may be a zero-argument callable so callers can
        defer building the (O(|V|·levels)) input-graph partition to the
        sampled levels where the recompute actually runs.
        """
        ctx = self._require_ctx()
        if self.auditor.mode == "off" or self._input_graph is None:
            return
        if not self.auditor._quality_due(level):
            return
        if callable(partition):
            partition = partition()
        with ctx.tracer.span(
            "guardian_audit_quality", level=level, mode=self.auditor.mode
        ) as sp:
            n = self.auditor.audit_quality(
                level,
                input_graph=self._input_graph,
                partition=partition,
                tracked_modularity=tracked_modularity,
                tracked_coverage=tracked_coverage,
            )
            sp.set(checks=n)
        ctx.tracer.counter("guardian.checks").inc(n)

    # -------------------------------------------------------------- breaches
    def _breach(
        self, kind: str, level: int, *, phase: str, detail: str
    ) -> None:
        """Account one watchdog breach and take a ladder rung."""
        ctx = self._require_ctx()
        reason = f"{kind}@level{level}"
        ctx.recovery.guardian_breaches += 1
        ctx.tracer.counter("guardian.breaches").inc()
        with ctx.tracer.span(
            "guardian_breach", level=level, kind=kind, phase=phase
        ) as sp:
            sp.set(detail=detail)
        warnings.warn(
            GuardianBreach(f"{detail} [{reason}]"), stacklevel=3
        )
        ctx.log.warning("guardian breach (%s): %s", reason, detail)
        self._degrade(reason, kind=kind, level=level)

    def _degrade(
        self, reason: str, *, kind: str = "", level: int = -1
    ) -> None:
        """Apply the first applicable remaining ladder rung."""
        ctx = self._require_ctx()
        # A predicted ramp breach is a memory breach: same remedy, taken
        # earlier — before the hard ceiling is crossed.
        if self.spill_dir is not None and kind in (
            "memory_budget",
            "memory_ramp",
        ):
            if not self._spilled and not getattr(
                ctx.backend, "sharded", False
            ):
                # The spill rung sits above the regular ladder and fires
                # at most once, for memory breaches only: instead of
                # trading away parallelism or audit strictness, move the
                # run's working set out of core and keep going at full
                # fidelity.  It does not consume a regular rung — if
                # memory pressure persists even out-of-core, the
                # ordinary ladder (and eventually abort) still stands
                # behind it.
                self._spilled = True
                self._spill_level = level
                self._spill(ctx, reason)
                return
            if self._spilled and level <= self._spill_level:
                # Grace window: the spill takes effect at the next level
                # boundary (the engine spills the graph when the level
                # is entered), so the remaining phases of the breaching
                # level still run in-memory.  Degrading again before the
                # remedy could possibly work would burn the ladder down
                # to abort on the very breach the spill is answering.
                ctx.log.warning(
                    "guardian: memory breach (%s) within the spill "
                    "grace window (spilled at level %d); not degrading "
                    "further",
                    reason,
                    self._spill_level,
                )
                return
        while self._rung < len(LADDER_RUNGS):
            rung = LADDER_RUNGS[self._rung]
            self._rung += 1
            applied = self._apply_rung(ctx, rung, reason)
            if applied:
                transition = f"{rung}({reason})"
                ctx.recovery.ladder.append(transition)
                ctx.tracer.counter("guardian.degradations").inc()
                with ctx.tracer.span("guardian_degrade", rung=rung) as sp:
                    sp.set(reason=reason, transition=transition)
                ctx.log.warning("guardian degradation: %s", transition)
                return
        # All rungs spent (abort itself raised above); defensive guard.
        raise RunAbortedError(  # pragma: no cover - abort rung raises first
            f"degradation ladder exhausted ({reason})",
            reason=reason,
            report=ctx.recovery,
        )

    def _spill(self, ctx: "RunContext", reason: str) -> None:
        """Migrate the live run onto the out-of-core sharded backend.

        The backend swap takes effect immediately; the engine spills the
        community graph at the next level boundary and streams every
        phase from the on-disk store from then on.  Results are
        bit-identical to the in-memory run (docs/OUT_OF_CORE.md).
        """
        from repro.parallel.backends import ShardedBackend

        ctx.backend = ShardedBackend(
            spill_dir=self.spill_dir,
            n_shards=self.spill_shards,
            chunks_per_worker=getattr(ctx.backend, "chunks_per_worker", 1),
        )
        transition = f"spill({reason})"
        ctx.recovery.ladder.append(transition)
        ctx.recovery.spills += 1
        ctx.tracer.counter("guardian.spills").inc()
        ctx.tracer.counter("guardian.degradations").inc()
        with ctx.tracer.span("guardian_spill", rung="spill") as sp:
            sp.set(
                reason=reason,
                transition=transition,
                spill_dir=str(self.spill_dir),
            )
        ctx.log.warning("guardian degradation: %s", transition)

    def _apply_rung(
        self, ctx: "RunContext", rung: str, reason: str
    ) -> bool:
        """Try one rung; False means inapplicable (skip to the next)."""
        if rung == "serial-backend":
            if ctx.backend.n_workers <= 1:
                return False
            from repro.parallel.backends import SerialBackend

            ctx.backend = SerialBackend(
                chunks_per_worker=getattr(ctx.backend, "chunks_per_worker", 1)
            )
            return True
        if rung == "halve-chunks":
            rechunked = getattr(ctx.backend, "rechunked", None)
            current = getattr(ctx.backend, "chunks_per_worker", None)
            if rechunked is None or current is None:
                return False
            if current >= MAX_CHUNKS_PER_WORKER:
                return False
            ctx.backend = rechunked(2)
            return True
        if rung == "lower-audit":
            if self.auditor.mode == "off":
                return False
            old = self.auditor.mode
            new = self.auditor.lower()
            ctx.log.warning(
                "guardian lowered audit strictness %s -> %s", old, new
            )
            return True
        # Final rung: stop the run.  Recorded like every other
        # transition, then raised; the engine catches this, writes a
        # last checkpoint when configured, stamps checkpoint_path, and
        # re-raises.
        transition = f"abort({reason})"
        ctx.recovery.ladder.append(transition)
        ctx.tracer.counter("guardian.degradations").inc()
        with ctx.tracer.span("guardian_degrade", rung="abort") as sp:
            sp.set(reason=reason, transition=transition)
        ctx.log.error("guardian degradation: %s", transition)
        raise RunAbortedError(
            f"run guardian exhausted its degradation ladder: {reason} "
            f"(ladder: {ctx.recovery.ladder})",
            reason=reason,
            report=ctx.recovery,
        )


class _NullPhaseGuard:
    """Reusable no-op phase guard."""

    def __enter__(self) -> "_NullPhaseGuard":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_PHASE_GUARD = _NullPhaseGuard()


class NullGuardian:
    """Inert guardian: every hook is a no-op.

    The default for unguarded runs — mirrors ``NullTracer`` /
    ``NullTimeline`` so the engine never branches on ``None``.
    """

    enabled = False

    def bind(self, ctx: Any, input_graph: Any) -> None:
        return None

    def phase(self, name: str, level: int) -> _NullPhaseGuard:
        return _NULL_PHASE_GUARD

    def observe_matching(
        self, level: int, matching: Any, n_vertices: int
    ) -> None:
        return None

    def audit_contraction(self, level: int, **kwargs: Any) -> None:
        return None

    def audit_quality(self, level: int, **kwargs: Any) -> None:
        return None


#: Shared inert instance (stateless, safe to reuse across runs).
NULL_GUARDIAN = NullGuardian()


def as_guardian(
    guardian: "RunGuardian | NullGuardian | None",
) -> "RunGuardian | NullGuardian":
    """Normalize an optional guardian (``None`` -> :data:`NULL_GUARDIAN`)."""
    if guardian is None:
        return NULL_GUARDIAN
    return guardian
