"""Retry policy: how hard the pool fights for a failed chunk.

The escalation ladder for one chunk is fixed; the policy only sets its
parameters:

1. run the chunk in a worker process (attempt 0);
2. on worker death, per-chunk deadline overrun, or invalid output, retry
   in a fresh worker after a capped exponential backoff — up to
   ``max_retries`` times;
3. after the retry budget is spent, *degrade*: execute the chunk
   in-process in the parent, where a crashing worker cannot take the
   result with it.

Because chunks write disjoint slices of the shared output block,
re-execution is idempotent — a recovered run is bit-identical to a
fault-free one, which is what the chaos suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Parameters of the chunk-failure escalation ladder.

    Attributes
    ----------
    max_retries:
        Worker re-executions allowed per chunk after the first attempt;
        ``0`` means any failure degrades straight to in-process execution.
    backoff_base_s:
        Delay before the first retry.
    backoff_factor:
        Multiplier applied per subsequent retry.
    backoff_cap_s:
        Upper bound on any single backoff delay.
    chunk_timeout_s:
        Per-attempt wall-clock deadline; a worker still running past it is
        terminated and the chunk is treated as failed.  ``None`` disables
        deadline enforcement (the default — a healthy chunk's duration is
        workload-dependent).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1.0
    chunk_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be at least backoff_base_s")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError("chunk_timeout_s must be positive or None")

    def backoff_s(self, retry: int) -> float:
        """Backoff before the ``retry``-th re-execution (1-based)."""
        if retry < 1:
            raise ValueError("retry numbers are 1-based")
        return min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_factor ** (retry - 1),
        )

    def delays(self) -> tuple[float, ...]:
        """The full backoff schedule, one entry per allowed retry."""
        return tuple(self.backoff_s(k) for k in range(1, self.max_retries + 1))

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries: any worker failure degrades to in-process at once."""
        return cls(max_retries=0)

    @classmethod
    def fast(cls) -> "RetryPolicy":
        """Tight backoffs for tests and interactive runs."""
        return cls(
            max_retries=3,
            backoff_base_s=0.001,
            backoff_factor=2.0,
            backoff_cap_s=0.01,
        )
