"""Retry policy: how hard the pool fights for a failed chunk.

The escalation ladder for one chunk is fixed; the policy only sets its
parameters:

1. run the chunk in a worker process (attempt 0);
2. on worker death, per-chunk deadline overrun, or invalid output, retry
   in a fresh worker after a capped exponential backoff — up to
   ``max_retries`` times;
3. after the retry budget is spent, *degrade*: execute the chunk
   in-process in the parent, where a crashing worker cannot take the
   result with it.

Because chunks write disjoint slices of the shared output block,
re-execution is idempotent — a recovered run is bit-identical to a
fault-free one, which is what the chaos suite asserts.

Backoffs can additionally carry *decorrelated jitter* (``jitter=True``):
when a shared fault (a dead worker host, a full disk, an overloaded
service) fails many chunks at once, a deterministic schedule wakes every
retry at the same instant and the herd stampedes the same resource
again.  Jittered delays follow the decorrelated-jitter rule
``d_k = min(cap, uniform(base, 3·d_{k-1}))`` with the random draw keyed
by ``(jitter_seed, token, retry)`` — a pure function of its inputs, so
tests stay deterministic while distinct ``token`` values (the pool
passes the chunk's offset, the streaming service its batch sequence
number) spread retries apart in time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Parameters of the chunk-failure escalation ladder.

    Attributes
    ----------
    max_retries:
        Worker re-executions allowed per chunk after the first attempt;
        ``0`` means any failure degrades straight to in-process execution.
    backoff_base_s:
        Delay before the first retry.
    backoff_factor:
        Multiplier applied per subsequent retry.
    backoff_cap_s:
        Upper bound on any single backoff delay.
    chunk_timeout_s:
        Per-attempt wall-clock deadline; a worker still running past it is
        terminated and the chunk is treated as failed.  ``None`` disables
        deadline enforcement (the default — a healthy chunk's duration is
        workload-dependent).
    jitter:
        Randomize each delay with the decorrelated-jitter rule so
        simultaneous failures don't retry in lockstep.  Off by default:
        the undecorated schedule is exactly the historical capped
        exponential.
    jitter_seed:
        Seed of the jitter's random draws.  Every delay is a pure
        function of ``(jitter_seed, token, retry)``, so a fixed seed
        keeps :meth:`delays` (and any test built on it) deterministic.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_s: float = 1.0
    chunk_timeout_s: float | None = None
    jitter: bool = False
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("backoff_cap_s must be at least backoff_base_s")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError("chunk_timeout_s must be positive or None")

    def backoff_s(self, retry: int, *, token: int = 0) -> float:
        """Backoff before the ``retry``-th re-execution (1-based).

        ``token`` identifies the retrying unit (chunk offset, batch
        sequence number, …); with :attr:`jitter` enabled, different
        tokens draw different delays so synchronized failures fan out
        instead of thundering back together.  Without jitter the token
        is ignored and the schedule is the capped exponential.
        """
        if retry < 1:
            raise ValueError("retry numbers are 1-based")
        if not self.jitter:
            return min(
                self.backoff_cap_s,
                self.backoff_base_s * self.backoff_factor ** (retry - 1),
            )
        # Decorrelated jitter: d_k = min(cap, uniform(base, 3*d_{k-1})),
        # d_0 = base.  Each draw is keyed by (seed, token, k) alone, so
        # the whole schedule is a pure function of its arguments —
        # independent of call order, reproducible in tests.
        delay = self.backoff_base_s
        for k in range(1, retry + 1):
            r = float(
                np.random.default_rng(
                    [int(self.jitter_seed), int(token), k]
                ).random()
            )
            lo = self.backoff_base_s
            hi = max(3.0 * delay, lo)
            delay = min(self.backoff_cap_s, lo + r * (hi - lo))
        return delay

    def delays(self, *, token: int = 0) -> tuple[float, ...]:
        """The full backoff schedule, one entry per allowed retry."""
        return tuple(
            self.backoff_s(k, token=token)
            for k in range(1, self.max_retries + 1)
        )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries: any worker failure degrades to in-process at once."""
        return cls(max_retries=0)

    @classmethod
    def fast(cls) -> "RetryPolicy":
        """Tight backoffs for tests and interactive runs."""
        return cls(
            max_retries=3,
            backoff_base_s=0.001,
            backoff_factor=2.0,
            backoff_cap_s=0.01,
        )
