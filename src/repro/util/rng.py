"""Seeded random-number-generator helpers.

Every stochastic entry point in the library accepts a ``seed`` argument that
may be ``None``, an integer, a :class:`numpy.random.SeedSequence` or an
existing :class:`numpy.random.Generator`; :func:`as_generator` normalizes all
of these.  Deterministic seeding is load-bearing here: the paper's algorithm
is non-deterministic under real threads, ours is reproducible by construction
so the test suite can assert exact results.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["as_generator", "spawn_seeds", "SeedLike"]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Passing an existing generator returns it unchanged (shared state), so a
    caller can thread one RNG through several stochastic stages.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences from ``seed``.

    Used by the benchmark harness to give each of the paper's "three runs
    per configuration" an independent stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive from the generator's bit stream to stay reproducible.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        ss = np.random.SeedSequence(seed)
    return list(ss.spawn(n))
