"""Library logging.

One namespaced logger per module under the ``repro`` root; silent by
default (NullHandler, standard library etiquette) and switched on by
:func:`enable_console_logging` — used by the CLI's ``--verbose`` flag.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """The library logger, optionally namespaced (``repro.<name>``)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


#: Marker attribute identifying the handler this module installed, so
#: repeated enable calls reuse it instead of stacking duplicates.
_HANDLER_TAG = "_repro_console_handler"


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library root; returns the handler
    so callers (and tests) can detach it again.

    Idempotent: calling it again updates the level of the handler it
    already installed rather than adding a second one (which would
    duplicate every log line).
    """
    logger = logging.getLogger(_ROOT)
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_TAG, False):
            existing.setLevel(level)
            logger.setLevel(level)
            return existing
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    handler.setLevel(level)
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
