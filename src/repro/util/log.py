"""Library logging.

One namespaced logger per module under the ``repro`` root; silent by
default (NullHandler, standard library etiquette) and switched on by
:func:`enable_console_logging` — used by the CLI's ``--verbose`` flag.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_console_logging"]

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """The library logger, optionally namespaced (``repro.<name>``)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library root; returns the handler
    so callers (and tests) can detach it again."""
    logger = logging.getLogger(_ROOT)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
