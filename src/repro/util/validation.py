"""Argument-validation helpers shared across the library.

These raise ``ValueError``/``TypeError`` for caller mistakes (bad arguments)
and are distinct from :class:`repro.errors.InvariantViolation`, which flags
internal representation corruption.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_1d",
    "check_same_length",
    "check_nonnegative",
    "check_positive",
]


def check_1d(arr: np.ndarray, name: str) -> None:
    """Require ``arr`` to be a one-dimensional ndarray."""
    if not isinstance(arr, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(arr).__name__}")
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")


def check_same_length(name_a: str, a: np.ndarray, name_b: str, b: np.ndarray) -> None:
    """Require two arrays to have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def check_nonnegative(value: float, name: str) -> None:
    """Require a scalar to be >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_positive(value: float, name: str) -> None:
    """Require a scalar to be > 0."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
