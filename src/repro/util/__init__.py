"""Small shared utilities: RNG handling, timing, validation, array helpers."""

from repro.util.atomicio import atomic_write, atomic_write_bytes, atomic_write_text
from repro.util.rng import as_generator, spawn_seeds
from repro.util.timing import Timer
from repro.util.validation import (
    check_1d,
    check_nonnegative,
    check_positive,
    check_same_length,
)

__all__ = [
    "atomic_write",
    "atomic_write_bytes",
    "atomic_write_text",
    "as_generator",
    "spawn_seeds",
    "Timer",
    "check_1d",
    "check_nonnegative",
    "check_positive",
    "check_same_length",
]
