"""Atomic file writes: the tmp + flush + fsync + ``os.replace`` rule.

Every durable artifact in the pipeline — checkpoints, bench ledgers,
trace exports, reports, Perfetto timelines, and the out-of-core spill
shards — follows the same durability contract: the payload is written
to a temporary file in the destination directory, flushed and fsynced,
then ``os.replace``-d into place.  A crash mid-write can never leave a
truncated file under the final name; readers either see the previous
complete version or the new complete version, never a torn one.

This module is the single implementation of that rule.  The temporary
file carries the writer's PID (``<name>.tmp.<pid>``) so concurrent
writers from different processes never collide, and stale temporaries
from a crashed writer are recognisable and safe to delete.

Note the contract covers *torn writes under the final name*, not media
corruption after the rename — spill shards layer a checksummed header
on top (:mod:`repro.spmatrix.spill`) to catch bit rot and truncation
that happens to a file at rest.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

__all__ = ["atomic_write", "atomic_write_bytes", "atomic_write_text"]


@contextmanager
def atomic_write(
    path: str | os.PathLike,
    *,
    mode: str = "w",
    encoding: str | None = None,
) -> Iterator[IO]:
    """Context manager yielding a file handle that commits atomically.

    On clean exit the handle is flushed, fsynced, and renamed over
    ``path``; on any exception the temporary file is removed and the
    destination is left untouched.  ``mode`` must be a write mode
    (``"w"`` or ``"wb"``); text mode defaults to UTF-8.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write mode must be 'w' or 'wb', got {mode!r}")
    if encoding is None and mode == "w":
        encoding = "utf-8"
    final = Path(os.fspath(path))
    tmp = final.with_name(final.name + f".tmp.{os.getpid()}")
    try:
        with open(tmp, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    finally:
        if tmp.exists():  # replace failed or the body raised
            tmp.unlink()


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> Path:
    """Atomically write ``data`` to ``path``; returns the final path."""
    with atomic_write(path, mode="wb") as fh:
        fh.write(data)
    return Path(os.fspath(path))


def atomic_write_text(
    path: str | os.PathLike, text: str, *, encoding: str = "utf-8"
) -> Path:
    """Atomically write ``text`` to ``path``; returns the final path."""
    with atomic_write(path, mode="w", encoding=encoding) as fh:
        fh.write(text)
    return Path(os.fspath(path))
