"""Shared process-memory probe: anonymous RSS sampling + allocator trim.

Two subsystems need the same measurement — the run guardian's
memory-budget watchdog (:mod:`repro.resilience.guardian`) samples
resident memory at phase boundaries, and the live-telemetry sampler
(:mod:`repro.obs.telemetry`) samples it continuously in a background
thread.  Both care about the *same* quantity, for the same reason:

**Anonymous** resident pages are what a memory budget should bound.
File-backed pages (the sharded spill store's memmaps) are evictable by
the OS at will, so counting them would keep a run "over budget" even
after the spill rung has moved its working set onto disk.

:func:`rss_anon_mb` probes, best first:

1. ``RssAnon`` from ``/proc/self/status`` — anonymous resident pages
   only (Linux 4.5+).
2. Total RSS from ``/proc/self/statm`` — older kernels without the
   split accounting.
3. ``ru_maxrss`` from ``getrusage`` — the non-Linux fallback.  A
   high-water mark rather than an instantaneous sample, and the unit is
   platform-dependent: bytes on macOS, kilobytes on Linux and the BSDs.

:func:`rss_probe_source` names which rung answered, so telemetry
records can say whether a series is instantaneous (``rss_anon`` /
``statm``) or a high-water mark (``getrusage``).

:func:`trim_memory` hands freed allocator pages back to the OS (glibc
retains free()d arena memory indefinitely), so a sample taken after a
large phase reflects live memory rather than allocator history.
"""

from __future__ import annotations

import os
import sys

__all__ = ["rss_anon_mb", "rss_probe_source", "trim_memory"]


def _rss_from_proc_status() -> float | None:
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"RssAnon:"):
                    return int(line.split()[1]) / 1024.0  # kB -> MiB
    except (OSError, IndexError, ValueError):
        pass
    return None


def _rss_from_proc_statm() -> float | None:
    try:
        with open("/proc/self/statm", "rb") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE") / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        pass
    return None


def _rss_from_getrusage() -> float | None:
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if rss <= 0:  # pragma: no cover - degenerate platform value
            return None
        if sys.platform == "darwin":  # pragma: no cover - macOS only
            return rss / (1024 * 1024)
        return rss / 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return None


def rss_anon_mb() -> float | None:
    """Resident memory charged to this process in MiB (``None`` unknown).

    Prefers anonymous-only accounting (``RssAnon``); see the module
    docstring for the probe ladder and why anonymous pages are the
    budgeted quantity.
    """
    rss = _rss_from_proc_status()
    if rss is not None:
        return rss
    rss = _rss_from_proc_statm()
    if rss is not None:
        return rss
    return _rss_from_getrusage()


def rss_probe_source() -> str:
    """Which probe rung :func:`rss_anon_mb` currently answers from.

    One of ``"rss_anon"``, ``"statm"``, ``"getrusage"``, or ``"none"``.
    Cheap enough to call once per run (not per sample): the answer only
    changes with the platform, never over a process lifetime.
    """
    if _rss_from_proc_status() is not None:
        return "rss_anon"
    if _rss_from_proc_statm() is not None:
        return "statm"
    if _rss_from_getrusage() is not None:  # pragma: no cover - non-Linux
        return "getrusage"
    return "none"  # pragma: no cover - no probe available


def trim_memory() -> None:
    """Best-effort: hand freed allocator pages back to the OS.

    glibc retains free()d arena memory indefinitely, so an RSS sample
    taken after a large phase can stay inflated by memory that is
    *gone* from the program's perspective.  Collecting cycles and
    calling ``malloc_trim`` first makes budget checks judge live
    memory, not allocator history — in particular, after the spill rung
    migrates a run out of core, the retired in-memory working set
    actually leaves the resident set instead of re-breaching the budget
    every phase.  No-op where ``malloc_trim`` does not exist.
    """
    import gc

    gc.collect()
    try:
        import ctypes
        import ctypes.util

        name = ctypes.util.find_library("c")
        if name:
            ctypes.CDLL(name, use_errno=True).malloc_trim(0)
    except Exception:  # pragma: no cover - non-glibc platforms
        pass
