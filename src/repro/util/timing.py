"""Wall-clock timing helpers used by the benchmark harness and the
run-trace subsystem.

:class:`Timer` is backed by :func:`time.monotonic_ns` — an integer
monotonic clock immune to system clock adjustments — so span timestamps
recorded by :mod:`repro.obs.trace` are totally ordered within a process
and never negative.  ``elapsed`` stays a float in seconds for backward
compatibility with the benchmark harness.
"""

from __future__ import annotations

import time
from types import TracebackType

__all__ = ["Timer"]

_NS_PER_S = 1_000_000_000


class Timer:
    """Monotonic timer usable as a context manager or start/stop pair.

    >>> with Timer() as t:
    ...     _ = sum(range(100))
    >>> t.elapsed >= 0.0
    True

    Beyond the original context-manager form, a timer can be driven
    explicitly (``start()`` / ``stop()``) and checkpointed with
    :meth:`lap`, which returns the seconds since the previous lap (or
    since ``start``) and appends it to :attr:`laps`:

    >>> t = Timer().start()
    >>> first = t.lap()
    >>> second = t.lap()
    >>> len(t.laps)
    2
    """

    __slots__ = ("start_ns", "stop_ns", "laps", "_last_lap_ns")

    def __init__(self) -> None:
        self.start_ns: int | None = None
        self.stop_ns: int | None = None
        self.laps: list[float] = []
        self._last_lap_ns: int | None = None

    # ------------------------------------------------------------- control
    def start(self) -> "Timer":
        """Begin (or restart) timing; returns ``self`` for chaining."""
        self.start_ns = time.monotonic_ns()
        self.stop_ns = None
        self.laps = []
        self._last_lap_ns = self.start_ns
        return self

    def stop(self) -> float:
        """Freeze the timer and return the total elapsed seconds."""
        if self.start_ns is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.stop_ns = time.monotonic_ns()
        return self.elapsed

    def lap(self) -> float:
        """Checkpoint: seconds since the previous lap (or ``start``).

        The value is appended to :attr:`laps` so a caller timing an
        iterative kernel gets the full per-iteration series for free.
        """
        if self._last_lap_ns is None:
            raise RuntimeError("Timer.lap() called before start()")
        now = time.monotonic_ns()
        delta = (now - self._last_lap_ns) / _NS_PER_S
        self._last_lap_ns = now
        self.laps.append(delta)
        return delta

    # ------------------------------------------------------------ readouts
    @property
    def elapsed_ns(self) -> int:
        """Elapsed integer nanoseconds (to now if still running)."""
        if self.start_ns is None:
            return 0
        end = self.stop_ns if self.stop_ns is not None else time.monotonic_ns()
        return end - self.start_ns

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (to now if still running)."""
        return self.elapsed_ns / _NS_PER_S

    # ------------------------------------------------------ context manager
    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.stop()
