"""Vectorized array primitives used by the graph kernels.

These are the NumPy equivalents of the flat data-parallel loops the paper
writes in C: segmented reductions over bucketed edge arrays, compaction, and
stable key-grouping.  Keeping them here lets the core algorithm read like the
paper's pseudocode while every hot path stays vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.types import VERTEX_DTYPE

__all__ = [
    "group_reduce_sum",
    "segment_starts",
    "compact_indices",
    "renumber_dense",
]


def group_reduce_sum(
    keys: np.ndarray, values: np.ndarray, n_keys: int
) -> np.ndarray:
    """Sum ``values`` grouped by integer ``keys`` into a dense ``n_keys`` array.

    Equivalent to the paper's atomic fetch-and-add accumulation loop; here it
    is a single ``np.bincount`` (one pass over the data, no locks needed).
    """
    if len(keys) != len(values):
        raise ValueError("keys and values must have the same length")
    return np.bincount(keys, weights=values, minlength=n_keys).astype(
        values.dtype, copy=False
    )


def segment_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Indices where each run of equal values begins in a sorted key array.

    ``sorted_keys`` must be non-decreasing.  Returns an index array suitable
    for ``np.add.reduceat``-style segmented reductions.  Empty input yields an
    empty index array.
    """
    if len(sorted_keys) == 0:
        return np.empty(0, dtype=np.intp)
    mask = np.empty(len(sorted_keys), dtype=bool)
    mask[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=mask[1:])
    return np.flatnonzero(mask)


def compact_indices(mask: np.ndarray) -> np.ndarray:
    """Return the indices of set entries of a boolean mask (worklist build)."""
    return np.flatnonzero(mask)


def renumber_dense(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Map arbitrary integer labels onto ``0..k-1`` preserving order of first
    sorted appearance.

    Returns ``(new_labels, k)``.  This is the compaction step at the end of a
    contraction: surviving community representatives get consecutive ids.
    """
    uniq, inv = np.unique(labels, return_inverse=True)
    return inv.astype(VERTEX_DTYPE, copy=False), int(len(uniq))
