"""k-core decomposition by synchronous peeling.

Vectorized rounds: repeatedly delete every vertex whose residual degree is
below the current ``k``, recomputing degrees with one ``bincount`` per
round — the whole-array analogue of the parallel bucket peeling used in
large-scale graph toolkits.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE

__all__ = ["core_numbers"]


def core_numbers(graph: CommunityGraph) -> np.ndarray:
    """Core number of every vertex (self loops ignored)."""
    n = graph.n_vertices
    e = graph.edges
    core = np.zeros(n, dtype=VERTEX_DTYPE)
    if e.n_edges == 0 or n == 0:
        return core

    alive_edge = np.ones(e.n_edges, dtype=bool)
    alive_vertex = np.ones(n, dtype=bool)
    k = 1
    while alive_edge.any():
        # Peel everything below k until stable, then record and raise k.
        while True:
            deg = np.bincount(
                e.ei[alive_edge], minlength=n
            ) + np.bincount(e.ej[alive_edge], minlength=n)
            doomed = alive_vertex & (deg < k)
            if not doomed.any():
                break
            alive_vertex[doomed] = False
            alive_edge &= alive_vertex[e.ei] & alive_vertex[e.ej]
            if not alive_edge.any():
                break
        if alive_edge.any():
            deg = np.bincount(
                e.ei[alive_edge], minlength=n
            ) + np.bincount(e.ej[alive_edge], minlength=n)
            core[alive_vertex & (deg >= k)] = k
        k += 1
        if k > n:  # safety: cannot exceed n-core
            break
    return core
