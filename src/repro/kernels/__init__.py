"""Global graph-analysis kernels (§I's "current analysis tools").

The paper motivates community detection as a way to open "smaller portions
of the data to current analysis tools"; this subpackage supplies those
tools so the pipeline is closed end-to-end: BFS (distances / diameter
probes), triangle counting and clustering coefficients (the measure behind
[36]'s observation that R-MAT graphs lack community structure), k-core
decomposition and PageRank.  All kernels are vectorized whole-array NumPy,
the same execution style as the core algorithm.
"""

from repro.kernels.bfs import bfs_distances, eccentricity_lower_bound
from repro.kernels.triangles import (
    triangle_counts,
    global_clustering_coefficient,
    local_clustering_coefficients,
)
from repro.kernels.kcore import core_numbers
from repro.kernels.pagerank import pagerank

__all__ = [
    "bfs_distances",
    "eccentricity_lower_bound",
    "triangle_counts",
    "global_clustering_coefficient",
    "local_clustering_coefficients",
    "core_numbers",
    "pagerank",
]
