"""Triangle counting and clustering coefficients.

Implements the forward/compact algorithm: orient each edge from lower to
higher *degree* (ties by id), then intersect out-neighborhoods per edge.
Each triangle is counted exactly once at its smallest-rank vertex pair.

Clustering coefficients quantify community structure; [36] (cited by the
paper) shows R-MAT graphs have vanishing clustering, which is why the
paper calls them "known not to possess significant community structure".
The quality benchmarks verify exactly that contrast against the planted
graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "triangle_counts",
    "local_clustering_coefficients",
    "global_clustering_coefficient",
]


def _oriented_adjacency(graph: CommunityGraph) -> tuple[np.ndarray, np.ndarray]:
    """Each edge once, oriented by (degree, id) rank: src -> dst."""
    e = graph.edges
    deg = e.degrees()
    rank = deg.astype(np.int64) * np.int64(graph.n_vertices + 1) + np.arange(
        graph.n_vertices
    )
    forward = rank[e.ei] < rank[e.ej]
    src = np.where(forward, e.ei, e.ej)
    dst = np.where(forward, e.ej, e.ei)
    return src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE)


def triangle_counts(graph: CommunityGraph) -> np.ndarray:
    """Number of triangles through each vertex.

    The sum over vertices is three times the triangle count of the graph.
    """
    n = graph.n_vertices
    counts = np.zeros(n, dtype=np.int64)
    if graph.n_edges == 0:
        return counts
    src, dst = _oriented_adjacency(graph)

    # Build oriented CSR: out-neighbors sorted per vertex.
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    out_deg = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_deg, out=indptr[1:])

    # For each oriented edge (u, v): |out(u) ∩ out(v)| closes triangles.
    for k in range(len(src)):
        u, v = src[k], dst[k]
        a = dst[indptr[u] : indptr[u + 1]]
        b = dst[indptr[v] : indptr[v + 1]]
        common = np.intersect1d(a, b, assume_unique=True)
        if len(common):
            counts[u] += len(common)
            counts[v] += len(common)
            np.add.at(counts, common, 1)
    return counts


def local_clustering_coefficients(graph: CommunityGraph) -> np.ndarray:
    """Per-vertex clustering: triangles / possible neighbor pairs."""
    tri = triangle_counts(graph)
    deg = graph.edges.degrees().astype(np.float64)
    possible = deg * (deg - 1) / 2.0
    out = np.zeros(graph.n_vertices)
    np.divide(tri, possible, out=out, where=possible > 0)
    return out


def global_clustering_coefficient(graph: CommunityGraph) -> float:
    """Transitivity: 3 · triangles / open wedges."""
    tri_total = int(triangle_counts(graph).sum()) // 3
    deg = graph.edges.degrees().astype(np.float64)
    wedges = float((deg * (deg - 1) / 2.0).sum())
    if wedges == 0:
        return 0.0
    return 3.0 * tri_total / wedges
