"""Level-synchronous breadth-first search.

The classic frontier-expansion BFS used by Graph 500 (the paper's mirasol
machine is ranked by it): each round expands the whole frontier with two
vectorized gathers — no per-vertex Python work.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph
from repro.types import VERTEX_DTYPE

__all__ = ["bfs_distances", "eccentricity_lower_bound"]

UNREACHED = -1


def bfs_distances(graph: CommunityGraph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable vertices get ``-1``.

    Level-synchronous: the frontier at level ``d`` is expanded in one
    vectorized step using the CSR arrays.
    """
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    csr = CSRAdjacency.from_edgelist(graph.edges)
    dist = np.full(n, UNREACHED, dtype=VERTEX_DTYPE)
    dist[source] = 0
    frontier = np.array([source], dtype=VERTEX_DTYPE)
    level = 0
    while len(frontier):
        level += 1
        # Gather every neighbor of every frontier vertex at once.
        lens = csr.xadj[frontier + 1] - csr.xadj[frontier]
        total = int(lens.sum())
        if total == 0:
            break
        seg_id = np.repeat(np.arange(len(frontier)), lens)
        base = np.cumsum(lens) - lens
        pos = csr.xadj[frontier[seg_id]] + (np.arange(total) - base[seg_id])
        neighbors = csr.adj[pos]
        fresh = np.unique(neighbors[dist[neighbors] == UNREACHED])
        if len(fresh) == 0:
            break
        dist[fresh] = level
        frontier = fresh
    return dist


def eccentricity_lower_bound(
    graph: CommunityGraph, source: int = 0, sweeps: int = 2
) -> int:
    """Double-sweep eccentricity/diameter lower bound.

    Repeatedly BFS from the farthest vertex found so far — the standard
    cheap diameter estimator for small-world graphs.
    """
    if sweeps < 1:
        raise ValueError("need at least one sweep")
    best = 0
    v = source
    for _ in range(sweeps):
        dist = bfs_distances(graph, v)
        reached = dist >= 0
        if not reached.any():
            return 0
        far = int(dist[reached].max())
        best = max(best, far)
        v = int(np.flatnonzero(dist == far)[0])
    return best
