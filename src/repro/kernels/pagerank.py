"""PageRank by power iteration over the CSR adjacency.

Weighted, undirected formulation: transition probability proportional to
edge weight; dangling (isolated) vertices redistribute uniformly.  One
iteration is a single sparse matvec — the workload §VI's sparse-matrix
observation is about.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import CommunityGraph

__all__ = ["pagerank"]


def pagerank(
    graph: CommunityGraph,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """PageRank vector (sums to 1).

    Raises :class:`~repro.errors.ConvergenceError` if the L1 change does
    not drop below ``tol`` within ``max_iter`` iterations.
    """
    if not 0 <= damping < 1:
        raise ValueError("damping must lie in [0, 1)")
    n = graph.n_vertices
    if n == 0:
        return np.zeros(0)
    csr = CSRAdjacency.from_edgelist(graph.edges)
    strength = np.bincount(
        np.repeat(np.arange(n), csr.degrees()),
        weights=csr.weight,
        minlength=n,
    )
    dangling = strength == 0
    inv_strength = np.zeros(n)
    np.divide(1.0, strength, out=inv_strength, where=~dangling)

    rows = np.repeat(np.arange(n), csr.degrees())
    x = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        outflow = x * inv_strength
        spread = np.bincount(
            csr.adj, weights=csr.weight * outflow[rows], minlength=n
        )
        dangling_mass = float(x[dangling].sum())
        new = (1.0 - damping) / n + damping * (spread + dangling_mass / n)
        delta = float(np.abs(new - x).sum())
        x = new
        if delta < tol:
            return x / x.sum()
    raise ConvergenceError(
        f"pagerank did not converge within {max_iter} iterations"
    )
