#!/usr/bin/env python3
"""§VI in practice: the algorithm as sparse matrix ops and as a Pregel job.

The paper's Observations section argues the algorithm's primitives map to
sparse-matrix kernels (Combinatorial BLAS) and to vertex-centric cloud
frameworks (Pregel).  This example exercises both alternative substrates
shipped with the library:

* contraction computed as the triple product ``Sᵀ A S`` via the
  from-scratch SpGEMM, checked against the bucket-sort contraction;
* the locally dominant matching as a propose/accept Pregel protocol,
  with the per-superstep message counts a distributed run would pay.

Run:  python examples/matrix_and_pregel.py
"""

import numpy as np

from repro.core import ModularityScorer, contract, match_locally_dominant
from repro.generators import planted_partition_graph
from repro.metrics import Partition, modularity
from repro.pregel import MatchingProgram, PregelEngine
from repro.spmatrix import contract_via_spgemm, matrix_modularity
from repro.types import NO_VERTEX


def main() -> None:
    graph = planted_partition_graph(1_500, seed=3)
    print(f"graph: |V|={graph.n_vertices:,} |E|={graph.n_edges:,}")

    # --- sparse-matrix contraction --------------------------------------
    scores = ModularityScorer().score(graph)
    matching = match_locally_dominant(graph, scores)
    bucket_graph, mapping = contract(graph, matching)
    spgemm_graph = contract_via_spgemm(
        graph, mapping, bucket_graph.n_vertices
    )
    identical = (
        np.array_equal(bucket_graph.edges.ei, spgemm_graph.edges.ei)
        and np.allclose(bucket_graph.edges.w, spgemm_graph.edges.w)
        and np.allclose(bucket_graph.self_weights, spgemm_graph.self_weights)
    )
    print("\nSpGEMM contraction (S^T A S):")
    print(f"  contracted to {spgemm_graph.n_vertices:,} communities")
    print(f"  identical to bucket-sort contraction: {identical}")

    p = Partition.from_labels(mapping)
    q_matrix = matrix_modularity(graph, p.labels, p.n_communities)
    q_metric = modularity(graph, p)
    print(f"  matrix modularity  : {q_matrix:.6f}")
    print(f"  metric modularity  : {q_metric:.6f}")

    # --- Pregel matching --------------------------------------------------
    print("\nPregel locally-dominant matching:")
    engine = PregelEngine(graph)
    states = engine.run(MatchingProgram(), max_supersteps=400)
    partner = np.array(
        [s["partner"] if s["status"] == "matched" else NO_VERTEX for s in states]
    )
    n_pairs = int(np.count_nonzero(partner != NO_VERTEX)) // 2
    print(f"  matched pairs      : {n_pairs:,} (array kernel: {matching.n_pairs:,})")
    print(f"  supersteps         : {engine.n_supersteps}")
    print(f"  total messages     : {engine.total_messages():,}")
    print("  messages per superstep (first 10):")
    for s in engine.stats[:10]:
        print(
            f"    step {s.superstep:2d}: active={s.active_vertices:6,} "
            f"messages={s.messages_sent:7,}"
        )


if __name__ == "__main__":
    main()
