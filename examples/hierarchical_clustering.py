#!/usr/bin/env python3
"""Hierarchical community detection: nested communities at every scale.

§I motivates communities as "the basis for multi-level algorithms"; the
`repro.analysis.hierarchy` driver applies the paper's algorithm
recursively — every community bigger than a size budget is extracted and
clustered again — yielding a tree of nested communities.

Run:  python examples/hierarchical_clustering.py
"""

import numpy as np

from repro import modularity
from repro.analysis import hierarchical_communities
from repro.generators import planted_partition_graph


def print_tree(node, max_children=4, indent=""):
    tag = "leaf" if node.is_leaf else f"{len(node.children)} children"
    print(f"{indent}- depth {node.depth}: {node.size:5d} vertices ({tag})")
    for child in node.children[:max_children]:
        print_tree(child, max_children, indent + "  ")
    hidden = len(node.children) - max_children
    if hidden > 0:
        print(f"{indent}  ... {hidden} more children")


def main() -> None:
    graph = planted_partition_graph(
        6_000, mean_community_size=60.0, p_in=0.3, seed=13
    )
    print(f"graph: |V|={graph.n_vertices:,} |E|={graph.n_edges:,}")

    for max_size in (1_000, 200, 50):
        root = hierarchical_communities(graph, max_size=max_size)
        leaves = root.leaves()
        part = root.flat_partition(graph.n_vertices)
        sizes = np.array([leaf.size for leaf in leaves])
        print(
            f"\nmax_size={max_size:5d}: {len(leaves):4d} leaf communities, "
            f"depth {root.max_depth()}, "
            f"sizes {sizes.min()}..{sizes.max()}, "
            f"Q={modularity(graph, part):.3f}"
        )

    print("\ntree at max_size=1000 (truncated):")
    root = hierarchical_communities(graph, max_size=1_000)
    print_tree(root)


if __name__ == "__main__":
    main()
