#!/usr/bin/env python3
"""Scaling study: a miniature of the paper's Figures 1-2.

Runs the traced algorithm once per evaluation graph, then replays the
trace on all five modeled platforms (two Cray XMT generations, three
Intel OpenMP servers) across their processor/thread sweeps, printing
execution times and speed-ups in the layout of the paper's plots.

Run:  python examples/scaling_study.py [--scale 0.5]
"""

import argparse

from repro.bench import (
    format_scaling,
    load_dataset,
    peak_rate,
    run_with_trace,
    scaling_experiment,
)
from repro.bench.experiments import ALL_PLATFORMS, FIG12_GRAPHS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="dataset scale factor (1.0 = benchmark default)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    for gname in FIG12_GRAPHS:
        graph = load_dataset(gname, scale=args.scale, seed=args.seed)
        print(
            f"\n################ {gname} "
            f"(|V|={graph.n_vertices:,}, |E|={graph.n_edges:,}) ################"
        )
        run = run_with_trace(graph, graph_name=gname)
        print(
            f"levels={run.result.n_levels}  terminated_by={run.result.terminated_by}"
        )
        sweeps = scaling_experiment(run, ALL_PLATFORMS, seed=args.seed)
        for plat_name, sr in sweeps.items():
            print()
            print(format_scaling(sr))
            print(format_scaling(sr, speedup=True))
            print(
                f"  peak rate: {peak_rate(sr) / 1e6:.2f}M edges/s "
                f"(input edges / best time)"
            )


if __name__ == "__main__":
    main()
