#!/usr/bin/env python3
"""Web-crawl clustering: the uk-2007-05 scenario.

Generates a host-locality web-crawl graph (the paper's large workload),
clusters it with both of the paper's optimization criteria — modularity
and (negated) conductance — under the DIMACS coverage >= 0.5 termination
rule, and compares the clusterings against the generator's host
structure.

Run:  python examples/web_crawl.py
"""

from repro import (
    ConductanceScorer,
    ModularityScorer,
    TerminationCriteria,
    detect_communities,
    modularity,
)
from repro.generators import webgraph
from repro.metrics import (
    Partition,
    average_conductance,
    coverage,
    normalized_mutual_information,
)


def main() -> None:
    print("Generating a 30,000-page host-locality web crawl...")
    graph, hosts = webgraph(
        30_000,
        edges_per_vertex=12.0,
        mean_host_size=50.0,
        on_host_fraction=0.85,
        seed=11,
        extract_largest_component=False,
        return_hosts=True,
    )
    host_partition = Partition.from_labels(hosts)
    print(
        f"  |V| = {graph.n_vertices:,}   |E| = {graph.n_edges:,}   "
        f"hosts = {host_partition.n_communities:,}"
    )
    print(
        f"  host-partition coverage  : {coverage(graph, host_partition):.3f}"
        "  (fraction of links staying on-host)"
    )

    termination = TerminationCriteria(coverage=0.5)
    for scorer in (ModularityScorer(), ConductanceScorer()):
        print(f"\nClustering with the {scorer.name} criterion...")
        res = detect_communities(graph, scorer, termination=termination)
        p = res.partition
        print(f"  terminated by        : {res.terminated_by}")
        print(f"  levels               : {res.n_levels}")
        print(f"  communities          : {p.n_communities:,}")
        print(f"  modularity           : {modularity(graph, p):.4f}")
        print(f"  coverage             : {coverage(graph, p):.4f}")
        print(f"  mean conductance     : {average_conductance(graph, p):.4f}")
        print(
            "  NMI vs host structure: "
            f"{normalized_mutual_information(p, host_partition):.3f}"
        )


if __name__ == "__main__":
    main()
