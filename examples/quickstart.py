#!/usr/bin/env python3
"""Quickstart: detect communities in a synthetic social network.

Builds a LiveJournal-like planted-partition graph, runs the paper's
parallel agglomerative algorithm with its default configuration
(modularity scoring, coverage >= 0.5 termination) and prints what it
found.

Run:  python examples/quickstart.py
"""

from repro import detect_communities, modularity
from repro.generators import planted_partition_graph
from repro.metrics import coverage


def main() -> None:
    print("Generating a 5,000-vertex social network with planted communities...")
    graph = planted_partition_graph(5_000, seed=42)
    print(f"  |V| = {graph.n_vertices:,}   |E| = {graph.n_edges:,}")

    print("\nRunning parallel agglomerative community detection...")
    result = detect_communities(graph)

    print(f"  terminated by   : {result.terminated_by}")
    print(f"  levels          : {result.n_levels}")
    print(f"  communities     : {result.n_communities:,}")
    print(f"  modularity      : {modularity(graph, result.partition):.4f}")
    print(f"  coverage        : {coverage(graph, result.partition):.4f}")

    print("\nContraction history (community graph per level):")
    print("  level   vertices      edges   merges  passes  coverage")
    for s in result.levels:
        print(
            f"  {s.level:5d} {s.n_vertices:10,} {s.n_edges:10,} "
            f"{s.n_pairs:8,} {s.matching_passes:7d}  {s.coverage_after:.3f}"
        )

    sizes = result.partition.sizes()
    print(
        f"\nCommunity sizes: min={sizes.min()}, median={int(sorted(sizes)[len(sizes)//2])}, "
        f"max={sizes.max()}"
    )


if __name__ == "__main__":
    main()
