#!/usr/bin/env python3
"""Plugging in a problem-specific edge scorer.

§III: "Our algorithm is agnostic towards edge scoring methods and can
benefit from any problem-specific methods."  This example implements two
custom scorers against the same EdgeScorer protocol the built-ins use:

* CommonNeighborScorer — scores an edge by the Jaccard-style overlap of
  its endpoints' neighborhoods (a triadic-closure heuristic popular in
  link analysis); and
* SizeBalancedScorer — modularity gain damped by the product of
  community volumes, which resists the resolution limit's giant-
  community pull.

Run:  python examples/custom_scoring.py
"""

import numpy as np

from repro import TerminationCriteria, detect_communities, modularity
from repro.core.scoring import ModularityScorer
from repro.generators import planted_partition_graph
from repro.graph.csr import CSRAdjacency
from repro.metrics import Partition, normalized_mutual_information


class CommonNeighborScorer:
    """Score = shared-neighbor count over union size (Jaccard), shifted so
    zero-overlap edges are not merged."""

    name = "common-neighbors"

    def score(self, graph, recorder=None):
        csr = CSRAdjacency.from_edgelist(graph.edges)
        e = graph.edges
        neighbor_sets = [
            frozenset(csr.neighbors(v).tolist()) for v in range(graph.n_vertices)
        ]
        scores = np.empty(e.n_edges)
        for k in range(e.n_edges):
            a = neighbor_sets[int(e.ei[k])]
            b = neighbor_sets[int(e.ej[k])]
            union = len(a | b)
            scores[k] = len(a & b) / union - 0.05 if union else -1.0
        return scores


class SizeBalancedScorer:
    """Modularity gain with a volume-product damping exponent."""

    name = "size-balanced"

    def __init__(self, damping: float = 0.25) -> None:
        self.damping = damping

    def score(self, graph, recorder=None):
        w_total = graph.total_weight()
        e = graph.edges
        if w_total == 0:
            return np.zeros(e.n_edges)
        vol = graph.strengths()
        dq = e.w / w_total - vol[e.ei] * vol[e.ej] / (2.0 * w_total**2)
        damp = (1.0 + vol[e.ei] * vol[e.ej]) ** -self.damping
        return dq * damp


def main() -> None:
    graph, labels = planted_partition_graph(
        3_000, mean_community_size=25.0, p_in=0.4, seed=5, return_labels=True
    )
    truth = Partition.from_labels(labels)
    print(
        f"Planted-partition graph: |V|={graph.n_vertices:,}, "
        f"|E|={graph.n_edges:,}, planted communities={truth.n_communities}"
    )

    termination = TerminationCriteria.local_maximum()
    print(f"\n  {'scorer':20s} {'comms':>6s} {'modularity':>11s} {'NMI':>7s}")
    for scorer in (
        ModularityScorer(),
        SizeBalancedScorer(),
        CommonNeighborScorer(),
    ):
        res = detect_communities(graph, scorer, termination=termination)
        p = res.partition
        print(
            f"  {scorer.name:20s} {p.n_communities:6d} "
            f"{modularity(graph, p):11.4f} "
            f"{normalized_mutual_information(p, truth):7.3f}"
        )


if __name__ == "__main__":
    main()
