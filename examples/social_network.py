#!/usr/bin/env python3
"""Social-network analysis: the parallel algorithm vs sequential baselines.

Reproduces the paper's §V quality sanity check ("resulting modularities
appear reasonable compared with results from a different, sequential
implementation") on two graphs with known structure:

* Zachary's karate club — the classic two-faction social network;
* a planted-partition graph with power-law community sizes — where the
  ground truth is known, so NMI/ARI against the planted labels can be
  reported too.

Also demonstrates the local-refinement extension (§II "active work"),
which closes most of the quality gap to the sequential algorithms.

Run:  python examples/social_network.py
"""

from repro import (
    TerminationCriteria,
    detect_communities,
    modularity,
    refine_partition,
)
from repro.baselines import (
    cnm_communities,
    label_propagation_communities,
    louvain_communities,
)
from repro.generators import karate_club, planted_partition_graph
from repro.metrics import (
    Partition,
    adjusted_rand_index,
    normalized_mutual_information,
)


def analyze(name, graph, truth=None):
    print(f"\n=== {name}  (|V|={graph.n_vertices:,}, |E|={graph.n_edges:,}) ===")
    rows = []

    res = detect_communities(
        graph, termination=TerminationCriteria.local_maximum()
    )
    rows.append(("parallel agglomerative", res.partition))

    refined, moves = refine_partition(graph, res.partition, max_sweeps=5)
    rows.append((f"  + refinement ({moves} moves)", refined))

    cnm_part, _ = cnm_communities(graph)
    rows.append(("CNM (sequential)", cnm_part))

    louvain_part, _ = louvain_communities(graph, seed=0)
    rows.append(("Louvain (sequential)", louvain_part))

    lp_part = label_propagation_communities(graph, seed=0)
    rows.append(("label propagation", lp_part))

    header = f"  {'algorithm':32s} {'comms':>6s} {'modularity':>11s}"
    if truth is not None:
        header += f" {'NMI':>7s} {'ARI':>7s}"
    print(header)
    for label, part in rows:
        line = (
            f"  {label:32s} {part.n_communities:6d} "
            f"{modularity(graph, part):11.4f}"
        )
        if truth is not None:
            line += (
                f" {normalized_mutual_information(part, truth):7.3f}"
                f" {adjusted_rand_index(part, truth):7.3f}"
            )
        print(line)


def main() -> None:
    analyze("Zachary karate club", karate_club())

    graph, labels = planted_partition_graph(
        4_000,
        mean_community_size=30.0,
        p_in=0.35,
        background_degree=2.0,
        seed=7,
        return_labels=True,
    )
    analyze(
        "planted-partition social network",
        graph,
        truth=Partition.from_labels(labels),
    )


if __name__ == "__main__":
    main()
