#!/usr/bin/env python3
"""Drill-down analysis: §I's motivation, end to end.

"Finding communities ... plays a role both in developing new parallel
algorithms as well as opening smaller portions of the data to current
analysis tools."  This example runs the full pipeline:

1. cluster a web-crawl graph (coverage-terminated, the paper's rule);
2. summarize every community (sizes, density, conductance);
3. extract the largest community as a standalone subgraph;
4. run the "current analysis tools" on it — BFS diameter probe,
   clustering coefficient, k-core spectrum, PageRank hubs — which would
   be intractable or meaningless on the full graph;
5. recurse: detect sub-communities inside it.

Run:  python examples/analysis_pipeline.py
"""

import numpy as np

from repro import TerminationCriteria, detect_communities, modularity
from repro.analysis import (
    best_modularity_level,
    community_subgraph,
    community_summary,
)
from repro.bench.reporting import format_table
from repro.generators import webgraph
from repro.kernels import (
    core_numbers,
    eccentricity_lower_bound,
    global_clustering_coefficient,
    pagerank,
)
from repro.metrics import intercluster_conductance, performance


def main() -> None:
    print("1. Clustering a 20,000-page web crawl (coverage >= 0.5)...")
    graph = webgraph(20_000, seed=8)
    result = detect_communities(
        graph, termination=TerminationCriteria(coverage=0.5)
    )
    part = result.partition
    print(
        f"   {part.n_communities:,} communities, "
        f"Q={modularity(graph, part):.3f}, "
        f"DIMACS performance={performance(graph, part):.3f}, "
        f"intercluster conductance={intercluster_conductance(graph, part):.3f}"
    )

    level, best_part = best_modularity_level(graph, result.dendrogram)
    print(
        f"   best dendrogram level: {level}/{result.n_levels} "
        f"(Q={modularity(graph, best_part):.3f})"
    )

    print("\n2. Community summary (largest five):")
    stats = community_summary(graph, part)
    print(
        format_table(
            ["community", "size", "internal", "cut", "density", "conductance"],
            stats.as_rows(top=5),
        )
    )

    biggest = int(np.argmax(stats.sizes))
    print(f"\n3. Extracting community {biggest} as a standalone subgraph...")
    sub, ids = community_subgraph(graph, part, biggest)
    print(f"   |V|={sub.n_vertices:,} |E|={sub.n_edges:,}")

    print("\n4. Analysis kernels on the extracted community:")
    print(f"   diameter lower bound      : {eccentricity_lower_bound(sub)}")
    print(
        f"   clustering coefficient    : "
        f"{global_clustering_coefficient(sub):.3f}"
    )
    cores = core_numbers(sub)
    print(f"   max k-core                : {cores.max()}")
    pr = pagerank(sub)
    hubs = np.argsort(-pr)[:3]
    print(
        "   top PageRank pages        : "
        + ", ".join(f"{ids[h]} ({pr[h]:.4f})" for h in hubs)
    )

    print("\n5. Recursing: communities inside the community...")
    inner = detect_communities(
        sub, termination=TerminationCriteria.local_maximum()
    )
    print(
        f"   {inner.n_communities} sub-communities, "
        f"Q={modularity(sub, inner.partition):.3f}"
    )


if __name__ == "__main__":
    main()
