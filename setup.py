"""Legacy setup shim.

This environment has setuptools but no ``wheel`` package, so PEP 517
editable installs (which build a wheel) fail; ``pip install -e . \
--no-build-isolation --no-use-pep517`` uses this shim's ``develop``
path instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
