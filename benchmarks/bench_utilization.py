"""§V-C's monitoring observation as a measurable exhibit.

"Monitoring execution shows that the XMT compiler under-allocates threads
in portions of the code, leading to bursts of poor processor utilization"
— and the small soc-LiveJournal1 graph "provides insufficient parallelism
for large processor counts on the XMTs."

Asserted shape:

* time-weighted XMT utilization at 64 processors is much higher on the
  big uk crawl than on soc-LiveJournal1;
* utilization degrades as processors are added on the small graph;
* Intel (explicitly scheduled OpenMP threads) stays fully utilized.
"""

from conftest import emit

from repro.bench import format_table
from repro.platform import CRAY_XMT, CRAY_XMT2, INTEL_E7_8870, mean_utilization


def test_xmt_utilization(benchmark, capsys, results_dir, traced_runs):
    def profile():
        out = {}
        for gname, run in traced_runs.items():
            for machine, p in (
                (CRAY_XMT, 64),
                (CRAY_XMT2, 64),
                (INTEL_E7_8870, 80),
            ):
                out[(gname, machine.name)] = mean_utilization(
                    run.recorder.records, machine, p
                )
        return out

    util = benchmark(profile)

    rows = [
        [g, m, f"{u:.3f}"]
        for (g, m), u in sorted(util.items())
    ]
    text = format_table(
        ["graph", "platform", "time-weighted utilization"],
        rows,
        title="§V-C: processor utilization at full-scale allocation",
    )
    emit(capsys, results_dir, "utilization.txt", text)

    assert util[("uk-2007-05", "XMT")] > 2 * util[("soc-LiveJournal1", "XMT")]
    # Intel threads are explicitly scheduled: utilization is graph-
    # independent (hyper-threads count at their marginal yield, so the
    # value is eff(80)/80, not 1.0).
    e7_values = {round(u, 9) for (g, m), u in util.items() if m == "E7-8870"}
    assert len(e7_values) == 1
    assert e7_values.pop() > 0.6
    lj = traced_runs["soc-LiveJournal1"]
    u8 = mean_utilization(lj.recorder.records, CRAY_XMT, 8)
    u64 = mean_utilization(lj.recorder.records, CRAY_XMT, 64)
    assert u64 < u8
