"""§VI's data-scalability claim.

"Our improved parallel agglomerative community detection algorithm
demonstrates high performance, good parallel scalability, and good *data
scalability*."  Checked by sweeping the R-MAT scale: simulated best time
should grow near-linearly with edge count — i.e., the peak processing
rate (edges/second) stays within a modest band across a 16x size range
instead of degrading superlinearly.
"""

from conftest import SEED, emit

from repro.bench import format_table, peak_rate, run_with_trace, scaling_experiment
from repro.generators import rmat_graph
from repro.platform import CRAY_XMT2, INTEL_E7_8870

SCALES = (10, 12, 14)


def test_data_scalability(benchmark, capsys, results_dir):
    def run_all():
        out = {}
        for s in SCALES:
            graph = rmat_graph(s, 16, seed=SEED)
            run = run_with_trace(graph, graph_name=f"rmat-{s}")
            out[s] = (
                graph.n_edges,
                scaling_experiment(
                    run, (INTEL_E7_8870, CRAY_XMT2), seed=0
                ),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    rates: dict[str, list[float]] = {"E7-8870": [], "XMT2": []}
    for s in SCALES:
        n_edges, sweeps = results[s]
        row: list[object] = [f"rmat-{s}", f"{n_edges:,}"]
        for plat in ("E7-8870", "XMT2"):
            rate = peak_rate(sweeps[plat])
            rates[plat].append(rate)
            row.append(f"{rate / 1e6:.2f}M")
        rows.append(row)
    text = format_table(
        ["graph", "|E|", "E7-8870 rate", "XMT2 rate"],
        rows,
        title="§VI data scalability: peak rate across a 16x R-MAT size sweep",
    )
    emit(capsys, results_dir, "data_scaling.txt", text)

    # Rates must not *collapse* as data grows: the largest size achieves at
    # least half the best rate seen (and typically improves, since bigger
    # graphs parallelize better).
    for plat, series in rates.items():
        assert series[-1] >= 0.5 * max(series)
        # Bigger graphs should not scale worse than the smallest.
        assert series[-1] >= series[0] * 0.8
