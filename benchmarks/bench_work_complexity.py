"""§III complexity check: each contraction phase costs O(|E_c|) and the
whole run O(|E| · K); with geometric community-graph shrinkage the total
approaches O(|E| log |V|), while a star degenerates to one merge per
level.

Checked here on the real traces:

* per-level community-graph edges never exceed the input edge count;
* total edge work is bounded by |E| · K;
* on the rapidly-contracting soc-LiveJournal1 analogue the community
  graph shrinks geometrically (vertices at least halve every two
  levels), so total work stays within a small constant of |E|;
* the star graph exhibits the worst case: exactly one merge per level.
"""

from conftest import emit

from repro import TerminationCriteria, detect_communities
from repro.bench import format_table
from repro.generators import star_graph


def test_work_complexity(benchmark, capsys, results_dir, traced_runs):
    rows = []
    for name, run in traced_runs.items():
        res = run.result
        e_in = run.n_edges
        total = res.total_edge_work()
        k = res.n_levels
        rows.append(
            [name, f"{e_in:,}", k, f"{total:,}", f"{total / e_in:.2f}"]
        )
        assert all(s.n_edges <= e_in for s in res.levels)
        assert total <= e_in * k

    lj = traced_runs["soc-LiveJournal1"].result
    for a, b in zip(lj.levels, lj.levels[2:]):
        assert b.n_vertices <= a.n_vertices / 2 + 1
    assert lj.total_edge_work() < 4 * traced_runs["soc-LiveJournal1"].n_edges

    # Star graph: the paper's O(|E| * |V|) worst case — one merge/level.
    star = star_graph(64)
    res = benchmark(
        detect_communities,
        star,
        termination=TerminationCriteria(coverage=None, max_levels=10),
    )
    assert all(s.n_pairs == 1 for s in res.levels)

    text = format_table(
        ["graph", "|E|", "levels K", "Σ level edges", "work / |E|"],
        rows,
        title="§III work bound: total community-graph edges processed vs O(|E|·K)",
    )
    emit(capsys, results_dir, "work_complexity.txt", text)
