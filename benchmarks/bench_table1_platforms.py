"""Table I: processor characteristics of the five test platforms.

The architectural rows are exact facts from the paper; this bench prints
them from the machine-model registry (proving the models encode the same
platforms) and times a full cost-model evaluation across all platforms.
"""

from conftest import emit

from repro.bench import format_table1
from repro.platform import PLATFORMS, KernelRecord, simulate_time


def test_table1_platform_characteristics(benchmark, capsys, results_dir):
    rec = [KernelRecord(name="k", items=1_000_000, mem_words=5_000_000)]

    def evaluate_all_platforms():
        return {
            name: simulate_time(rec, machine, machine.max_parallelism).total
            for name, machine in PLATFORMS.items()
        }

    times = benchmark(evaluate_all_platforms)
    assert all(t > 0 for t in times.values())
    emit(capsys, results_dir, "table1.txt", format_table1())
