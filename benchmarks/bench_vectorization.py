"""Wall-clock payoff of the vectorized kernels.

The HPC-Python ground rule behind this implementation: hot paths must be
whole-array NumPy, with the readable pure-Python versions kept only as
correctness references.  This bench measures both on the same graph and
asserts the vectorized scoring and matching are at least an order of
magnitude faster — a real-time regression guard for the kernels that the
platform simulation builds on.
"""

import pytest

from repro.core import ModularityScorer, match_locally_dominant
from repro.generators import rmat_graph
from repro.reference import (
    locally_dominant_matching_ref,
    modularity_scores_ref,
)
from repro.util import Timer


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(11, 8, seed=3)


def test_vectorized_scoring_speedup(benchmark, graph):
    result = benchmark(ModularityScorer().score, graph)
    assert len(result) == graph.n_edges
    with Timer() as t_ref:
        modularity_scores_ref(graph)
    with Timer() as t_fast:
        ModularityScorer().score(graph)
    assert t_fast.elapsed * 10 < t_ref.elapsed


def test_vectorized_matching_speedup(benchmark, graph):
    scores = ModularityScorer().score(graph)
    result = benchmark(match_locally_dominant, graph, scores)
    assert result.n_pairs > 0
    with Timer() as t_ref:
        locally_dominant_matching_ref(graph, scores)
    with Timer() as t_fast:
        match_locally_dominant(graph, scores)
    assert t_fast.elapsed * 10 < t_ref.elapsed
