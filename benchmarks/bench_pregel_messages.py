"""§VI what-if: communication volume of a vertex-centric (Pregel) port.

The paper suggests the algorithm could move to "cloud-based
implementations through environments like Pregel"; the deciding cost
there is message volume.  This bench runs the matching — the paper's
central primitive — as a BSP propose/accept protocol on the
soc-LiveJournal1 analogue and reports supersteps and messages.

Asserted shape: the protocol terminates, produces a maximal matching,
and its total message volume stays within a small multiple of
|E| · rounds (each free vertex sends one proposal per round plus one
retirement fan-out ever).
"""

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.pregel import MatchingProgram, PregelEngine
from repro.types import NO_VERTEX


def test_pregel_matching_message_volume(
    benchmark, capsys, results_dir, datasets
):
    graph = datasets["soc-LiveJournal1"]

    def run():
        engine = PregelEngine(graph)
        states = engine.run(MatchingProgram(), max_supersteps=2000)
        return engine, states

    engine, states = benchmark.pedantic(run, rounds=1, iterations=1)

    partner = np.array(
        [
            s["partner"] if s["status"] == "matched" else NO_VERTEX
            for s in states
        ]
    )
    # Validity and maximality (weights are all positive).
    matched = np.flatnonzero(partner != NO_VERTEX)
    np.testing.assert_array_equal(partner[partner[matched]], matched)
    e = graph.edges
    both_free = (partner[e.ei] == NO_VERTEX) & (partner[e.ej] == NO_VERTEX)
    assert not both_free.any()

    n_pairs = len(matched) // 2
    rounds = (engine.n_supersteps + 1) // 2
    total_msgs = engine.total_messages()
    # One proposal per free vertex per round + one retirement fan-out.
    bound = graph.n_vertices * rounds + 2 * graph.n_edges
    assert total_msgs <= bound

    rows = [
        ["vertices", f"{graph.n_vertices:,}"],
        ["edges", f"{graph.n_edges:,}"],
        ["matched pairs", f"{n_pairs:,}"],
        ["supersteps", engine.n_supersteps],
        ["total messages", f"{total_msgs:,}"],
        ["messages / edge", f"{total_msgs / graph.n_edges:.2f}"],
    ]
    text = format_table(
        ["quantity", "value"],
        rows,
        title="§VI what-if: Pregel locally-dominant matching, communication volume",
    )
    emit(capsys, results_dir, "pregel_messages.txt", text)
