"""Figure 3: the uk-2007-05 web crawl on the two platforms big enough to
hold it — the E7-8870 (80 logical cores) and the Cray XMT2 (64 procs).

Shape claims checked against the paper's Figure 3 (E7 best 504.9s /
13.7x at full threads; XMT2 best 1063s / 29.6x):

* the E7-8870 achieves the faster absolute best time;
* the XMT2 achieves the larger speed-up;
* both speed-ups land within 2x of the paper's annotations;
* unlike soc-LiveJournal1, the large graph keeps the XMT2 scaling
  (best point at >= half the processor range).
"""

from conftest import emit

from repro.bench import (
    format_scaling,
    peak_rate,
    plot_scaling_results,
    scaling_experiment,
)
from repro.platform import CRAY_XMT2, INTEL_E7_8870

from repro.bench.paper_data import FIG3_UK

PAPER = {name: su for name, (_, su) in FIG3_UK.items()}


def test_figure3_uk_graph(benchmark, capsys, results_dir, traced_runs):
    run = traced_runs["uk-2007-05"]

    def sweep():
        return scaling_experiment(run, (INTEL_E7_8870, CRAY_XMT2), seed=0)

    sweeps = benchmark.pedantic(sweep, rounds=1, iterations=1)

    chunks = [
        plot_scaling_results(
            sweeps, title="Figure 3 (uk-2007-05): simulated time vs allocation"
        ),
        plot_scaling_results(
            sweeps,
            speedup=True,
            title="Figure 3 (uk-2007-05): speed-up vs allocation",
        ),
    ]
    for plat, sr in sweeps.items():
        chunks.append(format_scaling(sr))
        chunks.append(format_scaling(sr, speedup=True))
        chunks.append(f"  peak rate: {peak_rate(sr) / 1e6:.2f}M edges/s")
    emit(capsys, results_dir, "figure3.txt", "\n\n".join(chunks))

    e7, xmt2 = sweeps["E7-8870"], sweeps["XMT2"]
    assert e7.best_time() < xmt2.best_time()
    assert xmt2.best_speedup() > e7.best_speedup()
    for plat, sr in sweeps.items():
        assert PAPER[plat] / 2 <= sr.best_speedup() <= PAPER[plat] * 2
    assert xmt2.best_parallelism() >= CRAY_XMT2.n_processors // 2
