"""Figure 2: parallel speed-up relative to the best single-unit run.

Shape claims checked against the paper's annotated best speed-ups
(rmat: X5570 5.75x, X5650 4.86x, E7-8870 16.5x, XMT 19.8x, XMT2 24.8x;
soc-LiveJournal1: 5.12x, 3.78x, 8.01x, 3.42x, 9.24x):

* every simulated best speed-up is within 2x of the paper's figure
  (band check — the substrate is a model, not the authors' testbed);
* orderings: on rmat the XMTs out-scale every Intel box and the E7
  out-scales the small Intel boxes; on the small soc-LiveJournal1 the
  XMT gen 1 drops to the bottom ("insufficient parallelism");
* soc-LiveJournal1 scales worse than rmat on every massively-threaded
  platform.
"""

from conftest import emit

from repro.bench import format_scaling, plot_scaling_results, scaling_experiment
from repro.bench.experiments import ALL_PLATFORMS, FIG12_GRAPHS

from repro.bench.paper_data import FIG2_BEST_SPEEDUPS as PAPER_BEST_SPEEDUP


def test_figure2_speedups(benchmark, capsys, results_dir, traced_runs):
    def sweep_all():
        return {
            g: scaling_experiment(traced_runs[g], ALL_PLATFORMS, seed=0)
            for g in FIG12_GRAPHS
        }

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    chunks = []
    lines = ["best speed-up, ours vs paper:"]
    for (g, plat), paper in PAPER_BEST_SPEEDUP.items():
        ours = results[g][plat].best_speedup()
        lines.append(f"  {g:18s} {plat:8s} ours={ours:5.2f}x paper={paper:5.2f}x")
        # Band check: within a factor of two of the paper's annotation.
        assert paper / 2 <= ours <= paper * 2, (g, plat, ours, paper)
    for g in FIG12_GRAPHS:
        chunks.append(
            plot_scaling_results(
                results[g],
                speedup=True,
                title=f"Figure 2 ({g}): speed-up vs threads/processors",
            )
        )
        for plat, sr in results[g].items():
            chunks.append(format_scaling(sr, speedup=True))
    text = "\n".join(lines) + "\n\n" + "\n\n".join(chunks)
    emit(capsys, results_dir, "figure2.txt", text)

    su = {
        (g, plat): results[g][plat].best_speedup()
        for g in FIG12_GRAPHS
        for plat in results[g]
    }
    # rmat ordering: massively threaded platforms out-scale Intel.
    assert su[("rmat-24-16", "XMT2")] > su[("rmat-24-16", "E7-8870")]
    assert su[("rmat-24-16", "XMT")] > su[("rmat-24-16", "X5650")]
    assert su[("rmat-24-16", "E7-8870")] > su[("rmat-24-16", "X5570")]
    # The small real graph collapses on the XMT gen 1.
    assert su[("soc-LiveJournal1", "XMT")] == min(
        su[(g, p)] for (g, p) in su if g == "soc-LiveJournal1"
    )
    # soc-LiveJournal1 scales worse than rmat on the XMTs and the E7.
    for plat in ("XMT", "XMT2", "E7-8870"):
        assert su[("soc-LiveJournal1", plat)] < su[("rmat-24-16", plat)]
