"""Table II: the evaluation graphs — paper sizes beside our scaled
analogues, with the R-MAT generator as the timed workload."""

from conftest import SEED, emit

from repro.bench import format_table2
from repro.generators import rmat_graph


def test_table2_graph_sizes(benchmark, capsys, results_dir, datasets):
    # Time the artificial-workload generator (scale 12 keeps rounds fast).
    graph = benchmark(rmat_graph, 12, 16, seed=SEED)
    assert graph.n_edges > 0

    measured = {
        name: (g.n_vertices, g.n_edges) for name, g in datasets.items()
    }
    text = format_table2(measured)
    # Relative ordering must match the paper: uk > rmat > soc-LJ.
    sizes = {name: g.n_edges for name, g in datasets.items()}
    assert sizes["uk-2007-05"] > sizes["rmat-24-16"] > sizes["soc-LiveJournal1"]
    emit(capsys, results_dir, "table2.txt", text)
