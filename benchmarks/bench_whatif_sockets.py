"""§V-C's open question, answered in the model.

The paper: "This data is insufficient to see if a single, slower
E7-8870's additional cores can outperform the faster X5650's fewer
cores."  The cost model can run that experiment: a hypothetical
one-socket E7-8870 (10 physical cores, 20 threads, a quarter of the
4-socket bandwidth) against the full two-socket X5650 (12 cores,
24 threads).

This is a model extrapolation, not a paper result — the bench asserts
only internal consistency (the single socket is slower than the full
machine, both sweeps behave) and prints the answer for EXPERIMENTS.md.
"""

import dataclasses

from conftest import emit

from repro.bench import format_table
from repro.platform import INTEL_E7_8870, INTEL_X5650, simulate_time

E7_SINGLE_SOCKET = dataclasses.replace(
    INTEL_E7_8870,
    name="E7-8870x1",
    n_processors=1,
    physical_cores=10,
    total_bandwidth_words=INTEL_E7_8870.total_bandwidth_words / 4,
)


def best_time(records, machine):
    return min(
        simulate_time(records, machine, p).total
        for p in range(1, machine.max_parallelism + 1)
    )


def test_single_socket_e7_vs_x5650(benchmark, capsys, results_dir, traced_runs):
    run = traced_runs["rmat-24-16"]

    def evaluate():
        return {
            m.name: best_time(run.recorder.records, m)
            for m in (E7_SINGLE_SOCKET, INTEL_X5650, INTEL_E7_8870)
        }

    times = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    rows = [
        [name, f"{t:.4f}", f"{run.n_edges / t / 1e6:.2f}M"]
        for name, t in times.items()
    ]
    winner = min(times, key=times.get)  # type: ignore[arg-type]
    text = format_table(
        ["machine", "best time (s)", "rate (edges/s)"],
        rows,
        title=(
            "§V-C what-if: one slower E7-8870 socket vs the full X5650 "
            f"(model's answer: {winner} wins)"
        ),
    )
    emit(capsys, results_dir, "whatif_sockets.txt", text)

    # Internal consistency.
    assert times["E7-8870x1"] > times["E7-8870"]
    assert all(t > 0 for t in times.values())
