"""§V quality check: "Smaller graphs' resulting modularities appear
reasonable compared with results from a different, sequential
implementation in SNAP."

Compares the parallel algorithm's modularity against CNM and Louvain on
the community-rich graphs, plus NMI against planted truth on the
soc-LiveJournal1 analogue.
"""

from conftest import SCALE, SEED, emit

from repro import TerminationCriteria, detect_communities, modularity
from repro.baselines import cnm_communities, louvain_communities
from repro.bench import format_table
from repro.generators import karate_club, planted_partition_graph
from repro.metrics import Partition, normalized_mutual_information


def test_quality_vs_sequential(benchmark, capsys, results_dir):
    planted, labels = planted_partition_graph(
        int(3_000 * SCALE),
        mean_community_size=30.0,
        p_in=0.3,
        background_degree=3.0,
        seed=SEED,
        return_labels=True,
    )
    truth = Partition.from_labels(labels)
    graphs = {"karate": karate_club(), "soc-LiveJournal1-like": planted}

    run = lambda g: detect_communities(
        g, termination=TerminationCriteria.local_maximum()
    )
    benchmark.pedantic(run, args=(planted,), rounds=1, iterations=1)

    rows = []
    for name, g in graphs.items():
        res = run(g)
        q_par = modularity(g, res.partition)
        _, q_cnm = cnm_communities(g)
        _, q_lou = louvain_communities(g, seed=0)
        nmi = (
            f"{normalized_mutual_information(res.partition, truth):.3f}"
            if g is planted
            else "-"
        )
        rows.append(
            [name, f"{q_par:.4f}", f"{q_cnm:.4f}", f"{q_lou:.4f}", nmi]
        )
        # "Reasonable": within the same regime as the sequential codes.
        assert q_par > 0.6 * max(q_cnm, q_lou)

    text = format_table(
        ["graph", "parallel Q", "CNM Q", "Louvain Q", "NMI vs planted"],
        rows,
        title="§V quality: parallel modularity vs sequential baselines",
    )
    emit(capsys, results_dir, "quality.txt", text)
