"""The refinement extension (§II: "incorporating refinement into our
parallel algorithm is an area of active work").

Measures what the paper's planned extension buys: greedy vertex-move
refinement applied after the matching-based agglomeration, versus the
sequential Louvain quality on the same graph.

Asserted shape:

* refinement never lowers modularity and strictly raises it on the
  planted graph (the matching-based result leaves misassigned boundary
  vertices to fix);
* one round of refinement closes at least a third of the gap to
  Louvain's modularity;
* refinement converges (no moves) within a few sweeps.
"""

from conftest import SCALE, SEED, emit

from repro import (
    TerminationCriteria,
    detect_communities,
    modularity,
    refine_partition,
)
from repro.baselines import louvain_communities
from repro.bench import format_table
from repro.generators import planted_partition_graph


def test_refinement_extension(benchmark, capsys, results_dir):
    graph = planted_partition_graph(
        int(2_000 * SCALE), mean_community_size=30.0, p_in=0.35, seed=SEED
    )
    res = detect_communities(
        graph, termination=TerminationCriteria.local_maximum()
    )
    q0 = modularity(graph, res.partition)

    refined, moves = benchmark.pedantic(
        refine_partition,
        args=(graph, res.partition),
        kwargs=dict(max_sweeps=5),
        rounds=1,
        iterations=1,
    )
    q1 = modularity(graph, refined)
    _, q_louvain = louvain_communities(graph, seed=0)

    again, moves2 = refine_partition(graph, refined, max_sweeps=5)
    q2 = modularity(graph, again)

    rows = [
        ["agglomeration only", f"{q0:.4f}", "-"],
        ["+ refinement", f"{q1:.4f}", moves],
        ["+ refinement x2", f"{q2:.4f}", moves2],
        ["Louvain (sequential)", f"{q_louvain:.4f}", "-"],
    ]
    text = format_table(
        ["configuration", "modularity", "moves"],
        rows,
        title="§II extension: vertex-move refinement after agglomeration",
    )
    emit(capsys, results_dir, "refinement.txt", text)

    assert q1 > q0
    assert q1 - q0 >= (q_louvain - q0) / 3
    assert moves2 < max(1, moves // 4)  # essentially converged
