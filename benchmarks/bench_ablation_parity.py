"""§IV-A ablation: parity-hashed endpoint ordering vs plain lower-triangle
storage.

The paper: "we hash the order of i and j rather than storing the strictly
lower triangle...  This scatters the edges associated with high-degree
vertices across different source vertex buckets" — important because the
matching parallelizes across vertices scanning their buckets, and neither
threading environment composes nested parallel loops well, so one giant
bucket serializes its owner.

Checked on the scale-free R-MAT graph:

* the largest parity bucket is at most ~60 % of the largest
  lower-triangle bucket (roughly half the hub's edges move to its
  neighbors' buckets);
* the imbalance metric max/mean improves accordingly;
* total bucket mass is identical (every edge stored exactly once).
"""

import numpy as np
from conftest import emit

from repro.bench import format_table
from repro.graph.edgelist import (
    bucket_sizes,
    lower_triangle_canonical,
    parity_canonical,
)


def test_parity_hash_scatters_hubs(benchmark, capsys, results_dir, datasets):
    graph = datasets["rmat-24-16"]
    e = graph.edges
    n = graph.n_vertices

    def bucket_stats():
        par_first, _ = parity_canonical(e.ei, e.ej)
        low_first, _ = lower_triangle_canonical(e.ei, e.ej)
        return bucket_sizes(par_first, n), bucket_sizes(low_first, n)

    par, low = benchmark(bucket_stats)

    assert par.sum() == low.sum() == graph.n_edges
    rows = []
    for label, sizes in (("parity hash", par), ("lower triangle", low)):
        nonzero = sizes[sizes > 0]
        rows.append(
            [
                label,
                int(sizes.max()),
                f"{nonzero.mean():.1f}",
                f"{sizes.max() / nonzero.mean():.0f}",
            ]
        )
    text = format_table(
        ["ordering", "max bucket", "mean bucket", "max/mean"],
        rows,
        title="§IV-A ablation: bucket concentration under the two edge orderings",
    )
    emit(capsys, results_dir, "ablation_parity.txt", text)

    assert par.max() <= 0.6 * low.max()
    assert par.max() / par[par > 0].mean() < low.max() / low[low > 0].mean()
