"""Table III: peak processing rate (edges/second of the input graph over
the fastest sweep time) for every platform × graph combination.

Shape claims checked against the paper's Table III:

* the E7-8870 achieves the highest rate on every graph;
* soc-LiveJournal1's rate ordering matches the paper exactly
  (E7 > X5650 > X5570 > XMT2 > XMT);
* the XMT (gen 1) is the slowest platform on every graph.
"""

from conftest import emit

from repro.bench import format_table3, peak_rate, scaling_experiment
from repro.bench.experiments import ALL_PLATFORMS


def test_table3_peak_rates(benchmark, capsys, results_dir, traced_runs):
    def sweep_all():
        return {
            name: scaling_experiment(run, ALL_PLATFORMS, seed=0)
            for name, run in traced_runs.items()
        }

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    rates = {
        g: {p: peak_rate(sr) for p, sr in sweeps.items()}
        for g, sweeps in results.items()
    }
    for g in rates:
        assert rates[g]["E7-8870"] == max(rates[g].values())
        assert rates[g]["XMT"] == min(rates[g].values())
    lj = rates["soc-LiveJournal1"]
    assert (
        lj["E7-8870"] > lj["X5650"] > lj["X5570"] > lj["XMT2"] > lj["XMT"]
    )

    emit(capsys, results_dir, "table3.txt", format_table3(results))
