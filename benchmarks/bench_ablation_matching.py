"""§IV-B ablation: worklist matching vs the legacy full-sweep matching.

The paper: "Our improved matching's performance gains over our original
method are marginal on the Cray XMT but drastic on Intel-based platforms
using OpenMP" — the legacy method's per-sweep hammering of per-vertex
slots produced hot spots that "crippled an explicitly locking OpenMP
implementation".

Checked here:

* both matchers produce the identical clustering;
* at full Intel threads the legacy matcher is at least 10x slower
  (drastic), while on the XMT it is within 4x (marginal);
* the legacy matcher gets *slower* as Intel threads are added.
"""

from conftest import emit

from repro.bench import format_table, run_with_trace
from repro.platform import CRAY_XMT, INTEL_E7_8870, simulate_time


def test_matching_ablation(benchmark, capsys, results_dir, datasets):
    graph = datasets["rmat-24-16"]

    new = benchmark.pedantic(
        run_with_trace,
        args=(graph,),
        kwargs=dict(graph_name="rmat", matcher="worklist"),
        rounds=1,
        iterations=1,
    )
    old = run_with_trace(graph, graph_name="rmat", matcher="sweep")
    assert new.result.partition == old.result.partition

    def match_time(run, machine, p):
        bd = simulate_time(run.recorder.records, machine, p)
        return sum(v for k, v in bd.by_kernel.items() if k.startswith("match"))

    rows = []
    for label, machine, p_full in (
        ("E7-8870 (OpenMP)", INTEL_E7_8870, 80),
        ("XMT", CRAY_XMT, 64),
    ):
        t_new = match_time(new, machine, p_full)
        t_old = match_time(old, machine, p_full)
        rows.append(
            [label, p_full, f"{t_new:.4f}", f"{t_old:.4f}", f"{t_old / t_new:.1f}x"]
        )

    text = format_table(
        ["platform", "units", "worklist (s)", "legacy sweep (s)", "slowdown"],
        rows,
        title="§IV-B ablation: matching phase, simulated time at full allocation",
    )
    emit(capsys, results_dir, "ablation_matching.txt", text)

    e7_ratio = match_time(old, INTEL_E7_8870, 80) / match_time(
        new, INTEL_E7_8870, 80
    )
    xmt_ratio = match_time(old, CRAY_XMT, 64) / match_time(new, CRAY_XMT, 64)
    assert e7_ratio > 10.0  # drastic
    assert xmt_ratio < 4.0  # marginal
    assert e7_ratio > 3 * xmt_ratio

    # Hot spots: the legacy matcher regresses as Intel threads are added.
    t8 = match_time(old, INTEL_E7_8870, 8)
    t80 = match_time(old, INTEL_E7_8870, 80)
    assert t80 > t8
