"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one exhibit of the paper's evaluation section
and prints it in the paper's layout (ours beside the paper's reported
numbers where applicable).  The traced algorithm runs are session-scoped:
one detection run per (graph, kernel-variant) feeds every platform sweep,
mirroring the paper's methodology.

Set ``REPRO_BENCH_SCALE`` to shrink/grow the scaled datasets (default 1.0).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import load_dataset, run_with_trace

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def datasets():
    """The three Table II analogue graphs."""
    return {
        name: load_dataset(name, scale=SCALE, seed=SEED)
        for name in ("rmat-24-16", "soc-LiveJournal1", "uk-2007-05")
    }


@pytest.fixture(scope="session")
def traced_runs(datasets):
    """One traced detection run per graph (default kernels)."""
    return {
        name: run_with_trace(graph, graph_name=name)
        for name, graph in datasets.items()
    }


@pytest.fixture(scope="session")
def results_dir():
    """Directory where benchmarks persist their printed exhibits."""
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(capsys, results_dir: str, name: str, text: str) -> None:
    """Print an exhibit to the terminal and persist it for EXPERIMENTS.md."""
    with capsys.disabled():
        print()
        print(text)
    with open(os.path.join(results_dir, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
