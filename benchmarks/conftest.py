"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one exhibit of the paper's evaluation section
and prints it in the paper's layout (ours beside the paper's reported
numbers where applicable).  The traced algorithm runs are session-scoped:
one detection run per (graph, kernel-variant) feeds every platform sweep,
mirroring the paper's methodology.

Set ``REPRO_BENCH_SCALE`` to shrink/grow the scaled datasets (default 1.0).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import load_dataset, run_with_trace
from repro.bench.ledger import (
    RunRecord,
    host_info,
    repetition_from_run,
    write_ledger,
)
from repro.obs import QualityTimeline, Tracer

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))

#: Where the machine-readable BENCH_<name>.json ledgers land (repo root;
#: the .txt exhibits under results/ are the human views over these).
LEDGER_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="session")
def datasets():
    """The three Table II analogue graphs."""
    return {
        name: load_dataset(name, scale=SCALE, seed=SEED)
        for name in ("rmat-24-16", "soc-LiveJournal1", "uk-2007-05")
    }


@pytest.fixture(scope="session")
def traced_runs(datasets):
    """One traced detection run per graph (default kernels).

    Each run is wall-clock traced and quality-timelined, and dual-emits
    a machine-readable ``BENCH_<dataset>.json`` ledger at the repo root
    alongside the ``.txt`` exhibits (see ``docs/OBSERVABILITY.md``).
    """
    runs = {}
    for name, graph in datasets.items():
        t0 = time.perf_counter()
        run = run_with_trace(
            graph,
            graph_name=name,
            tracer=Tracer(),
            timeline=QualityTimeline(),
        )
        total_s = time.perf_counter() - t0
        record = RunRecord(
            name=name,
            graph={
                "name": name,
                "n_vertices": run.n_vertices,
                "n_edges": run.n_edges,
            },
            config={
                "scorer": "modularity",
                "matcher": "worklist",
                "contractor": "bucket",
                "scale": SCALE,
                "seed": SEED,
                "n_workers": 1,
            },
            host=host_info(),
            created_unix=time.time(),
            repetitions=[repetition_from_run(run, total_s)],
        )
        write_ledger(record, directory=LEDGER_DIR)
        runs[name] = run
    return runs


@pytest.fixture(scope="session")
def results_dir():
    """Directory where benchmarks persist their printed exhibits."""
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def emit(capsys, results_dir: str, name: str, text: str) -> None:
    """Print an exhibit to the terminal and persist it for EXPERIMENTS.md."""
    with capsys.disabled():
        print()
        print(text)
    with open(os.path.join(results_dir, name), "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
