"""§IV-C ablation: bucket-sort contraction vs the legacy hash-of-linked-
lists contraction (Feo's technique).

The paper: the legacy method "relied heavily on the Cray XMT's
full/empty bits and ability to chase linked lists efficiently"; "the
amount of locking and overhead in iterating over massive, dynamically
changing linked lists rendered a similar implementation on Intel-based
platforms using OpenMP infeasible".  It also notes contraction takes
"from 40% to 80% of the execution time".

Checked here:

* both contractors produce the identical clustering;
* at full Intel threads the legacy contraction is at least 3x slower;
* on the XMT the legacy contraction is NOT slower (it was the efficient
  choice there — the bucket method exists for OpenMP's sake);
* contraction accounts for a large share (>= 25%) of total simulated
  time at one thread, approaching the paper's 40-80% band.
"""

from conftest import emit

from repro.bench import format_table, run_with_trace
from repro.platform import CRAY_XMT, INTEL_E7_8870, simulate_time


def contract_time(run, machine, p):
    bd = simulate_time(run.recorder.records, machine, p)
    return sum(v for k, v in bd.by_kernel.items() if k.startswith("contract"))


def test_contraction_ablation(benchmark, capsys, results_dir, datasets):
    graph = datasets["rmat-24-16"]

    new = benchmark.pedantic(
        run_with_trace,
        args=(graph,),
        kwargs=dict(graph_name="rmat", contractor="bucket"),
        rounds=1,
        iterations=1,
    )
    old = run_with_trace(graph, graph_name="rmat", contractor="chains")
    assert new.result.partition == old.result.partition

    rows = []
    for label, machine, p_full in (
        ("E7-8870 (OpenMP)", INTEL_E7_8870, 80),
        ("XMT", CRAY_XMT, 64),
    ):
        t_new = contract_time(new, machine, p_full)
        t_old = contract_time(old, machine, p_full)
        rows.append(
            [
                label,
                p_full,
                f"{t_new:.4f}",
                f"{t_old:.4f}",
                f"{t_old / t_new:.2f}x",
            ]
        )
    text = format_table(
        ["platform", "units", "bucket sort (s)", "hash chains (s)", "ratio"],
        rows,
        title="§IV-C ablation: contraction phase, simulated time at full allocation",
    )
    emit(capsys, results_dir, "ablation_contraction.txt", text)

    e7_ratio = contract_time(old, INTEL_E7_8870, 80) / contract_time(
        new, INTEL_E7_8870, 80
    )
    xmt_ratio = contract_time(old, CRAY_XMT, 64) / contract_time(
        new, CRAY_XMT, 64
    )
    assert e7_ratio > 3.0  # infeasible under OpenMP
    assert xmt_ratio < 1.2  # the XMT liked the linked lists just fine

    # Contraction share of total time at one thread (paper: 40-80%).
    bd = simulate_time(new.recorder.records, INTEL_E7_8870, 1)
    assert bd.fraction_prefix("contract") >= 0.25
