"""Figure 1: execution time vs allocated OpenMP threads / XMT processors,
five platforms × two graphs, three runs per point.

Shape claims checked against the paper's Figure 1:

* on every platform the best time beats the single-unit time on rmat;
* single-processor XMT runs are the slowest single-unit runs anywhere
  (500 MHz, no cache), and Intel single-thread runs are the fastest;
* the XMT2 is substantially faster than the XMT generation 1 at equal
  processor counts;
* Intel platforms reach their best time at (or near) full utilization,
  the paper's "best performance always occurred at full utilization".
"""

from conftest import emit

from repro.bench import format_scaling, plot_scaling_results, scaling_experiment
from repro.bench.experiments import ALL_PLATFORMS, FIG12_GRAPHS


def test_figure1_execution_times(benchmark, capsys, results_dir, traced_runs):
    def sweep_all():
        return {
            g: scaling_experiment(traced_runs[g], ALL_PLATFORMS, seed=0)
            for g in FIG12_GRAPHS
        }

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    chunks = []
    for g in FIG12_GRAPHS:
        chunks.append(
            plot_scaling_results(
                results[g],
                title=f"Figure 1 ({g}): simulated time vs threads/processors",
            )
        )
        for plat, sr in results[g].items():
            chunks.append(format_scaling(sr))
    text = "\n\n".join(chunks)
    emit(capsys, results_dir, "figure1.txt", text)

    for g in FIG12_GRAPHS:
        sweeps = results[g]
        t1 = {p: sr.best_single_unit_time() for p, sr in sweeps.items()}
        # Intel single-thread fastest; XMT gen-1 single-proc slowest.
        assert min(t1, key=t1.get) in ("X5650", "E7-8870", "X5570")
        assert max(t1, key=t1.get) == "XMT"
        # XMT2 beats XMT at every shared processor count.
        for p in sweeps["XMT2"].times:
            if p in sweeps["XMT"].times:
                assert min(sweeps["XMT2"].times[p]) < min(
                    sweeps["XMT"].times[p]
                )

    # rmat: every platform gains from parallelism.
    for plat, sr in results["rmat-24-16"].items():
        assert sr.best_time() < sr.best_single_unit_time()

    # Intel best points sit in the upper half of the thread range on rmat.
    for plat in ("X5570", "X5650", "E7-8870"):
        sr = results["rmat-24-16"][plat]
        assert sr.best_parallelism() >= sr.machine.max_parallelism // 4
