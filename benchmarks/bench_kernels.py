"""Real wall-clock microbenchmarks of the three parallel primitives
(§III: score, match, contract) plus the substrate kernels, on the rmat
analogue.  These time the actual vectorized NumPy kernels — the Python
analogue of the paper's per-kernel engineering — and complement the
simulated-platform exhibits."""

import pytest

from repro.core import (
    ModularityScorer,
    contract,
    match_locally_dominant,
)
from repro.graph import CSRAdjacency, connected_components
from repro.parallel import parallel_edge_scores


@pytest.fixture(scope="module")
def rmat(datasets):
    return datasets["rmat-24-16"]


@pytest.fixture(scope="module")
def scored(rmat):
    return ModularityScorer().score(rmat)


@pytest.fixture(scope="module")
def matched(rmat, scored):
    return match_locally_dominant(rmat, scored)


def test_kernel_scoring(benchmark, rmat):
    scores = benchmark(ModularityScorer().score, rmat)
    assert len(scores) == rmat.n_edges


def test_kernel_scoring_process_pool(benchmark, rmat):
    scores = benchmark(parallel_edge_scores, rmat, n_workers=2)
    assert len(scores) == rmat.n_edges


def test_kernel_matching(benchmark, rmat, scored):
    res = benchmark(match_locally_dominant, rmat, scored)
    assert res.n_pairs > 0


def test_kernel_contraction(benchmark, rmat, matched):
    new, _ = benchmark(contract, rmat, matched)
    assert new.n_vertices < rmat.n_vertices


def test_kernel_csr_build(benchmark, rmat):
    csr = benchmark(CSRAdjacency.from_edgelist, rmat.edges)
    assert csr.xadj[-1] == 2 * rmat.n_edges


def test_kernel_connected_components(benchmark, rmat):
    labels, k = benchmark(
        connected_components, rmat.n_vertices, rmat.edges.ei, rmat.edges.ej
    )
    assert k >= 1


def test_kernel_bfs(benchmark, rmat):
    from repro.kernels import bfs_distances

    dist = benchmark(bfs_distances, rmat, 0)
    assert dist[0] == 0


def test_kernel_pagerank(benchmark, rmat):
    from repro.kernels import pagerank

    pr = benchmark(pagerank, rmat, tol=1e-8)
    assert abs(pr.sum() - 1.0) < 1e-9


def test_kernel_kcore(benchmark, rmat):
    from repro.kernels import core_numbers

    cores = benchmark(core_numbers, rmat)
    assert cores.max() >= 1


def test_kernel_spgemm_contraction(benchmark, rmat, matched):
    from repro.core.contraction import contract
    from repro.spmatrix import contract_via_spgemm

    _, mapping = contract(rmat, matched)
    k = int(mapping.max()) + 1
    coarse = benchmark.pedantic(
        contract_via_spgemm, args=(rmat, mapping, k), rounds=1, iterations=1
    )
    assert coarse.n_vertices == k
