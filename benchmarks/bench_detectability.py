"""Detectability study on the LFR benchmark family.

Not a paper exhibit — a standard evaluation from the community-detection
literature the paper builds on (Fortunato's survey [10] popularized it):
sweep the LFR mixing parameter and measure how well the parallel
algorithm recovers the planted communities.

Asserted shape: recovery (NMI vs planted truth) decreases monotonically
in ``mu`` for the parallel algorithm, stays near-perfect at ``mu = 0.1``
and collapses by ``mu = 0.7`` — the canonical LFR curve.
"""

import pytest
from conftest import SCALE, SEED, emit

from repro import TerminationCriteria, detect_communities
from repro.bench import format_table
from repro.generators import lfr_graph
from repro.metrics import Partition, coverage, normalized_mutual_information

MUS = (0.1, 0.3, 0.5, 0.7)


def test_lfr_detectability(benchmark, capsys, results_dir):
    n = int(1_500 * SCALE)

    def sweep():
        out = {}
        for mu in MUS:
            graph, labels = lfr_graph(n, mu=mu, seed=SEED, return_labels=True)
            truth = Partition.from_labels(labels)
            res = detect_communities(
                graph, termination=TerminationCriteria.local_maximum()
            )
            out[mu] = (
                coverage(graph, truth),
                normalized_mutual_information(res.partition, truth),
                res.n_communities,
                truth.n_communities,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{mu:.1f}",
            f"{cov:.3f}",
            f"{nmi:.3f}",
            found,
            planted,
        ]
        for mu, (cov, nmi, found, planted) in results.items()
    ]
    text = format_table(
        ["mu", "truth coverage", "NMI", "found comms", "planted comms"],
        rows,
        title="LFR detectability sweep (parallel agglomeration)",
    )
    emit(capsys, results_dir, "detectability.txt", text)

    nmis = [results[mu][1] for mu in MUS]
    assert all(b <= a + 0.02 for a, b in zip(nmis, nmis[1:]))  # monotone
    assert nmis[0] > 0.7
    assert nmis[-1] < 0.2
    # Truth coverage tracks 1 - mu.
    for mu in MUS:
        assert results[mu][0] == pytest.approx(1.0 - mu, abs=0.1)

